// cluster/distribute: namespace distribution across bricks (DHT).
//
// "GlusterFS in its default configuration does not stripe the data, but
// instead distributes the namespace across all the servers" (paper §2.1).
// Each path hashes to exactly one subvolume; all fops for that path go
// there. Subvolumes are placed on a consistent-hash ring (`vnodes` points
// per subvolume), so `add_brick`/`remove_brick` move only ~1/(N+1) of the
// namespace instead of reshuffling everything the way `hash % N` would.
//
// Cross-subvolume rename is the DHT's hard case: the data must move. The
// crash-safe sequence stages the bytes under a private name on the
// destination, commits with one brick-local atomic rename(stage -> to), and
// only then unlinks the source. If that final unlink cannot be delivered,
// the rename is still committed: the leftover source name is recorded as a
// pending unlink, hidden from every fop, and physically reaped on the next
// touch (replay-window idempotence at the DHT layer). `legacy_rename`
// preserves the pre-fix sequence — unlink(to) before create(to) — so the
// crash-window regression test can demonstrate both of its failure modes.
//
// A subvolume is any xlator: a ProtocolClient for plain N-brick distribute,
// or a ReplicateXlator for the distribute-over-replicate N x K brick grids
// the testbed composes (DESIGN.md §5i).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "gluster/xlator.h"

namespace imca::gluster {

struct DistributeParams {
  std::size_t vnodes = 128;    // ring points per subvolume
  bool legacy_rename = false;  // pre-fix non-atomic cross-brick rename
};

struct DistributeStats {
  std::uint64_t cross_renames = 0;       // renames that crossed subvolumes
  std::uint64_t stage_commits = 0;       // staged copies atomically swapped in
  std::uint64_t pending_unlinks = 0;     // source cleanups left owing
  std::uint64_t pending_unlink_replays = 0;  // cleanups reaped on later fops
  std::uint64_t rebalanced_paths = 0;    // paths moved by add/remove_brick
  std::uint64_t rebalance_bytes = 0;
};

struct RebalanceReport {
  std::uint64_t moved = 0;
  std::uint64_t bytes = 0;
};

class DistributeXlator final : public Xlator, public ServerHealth {
 public:
  // Takes ownership of one subvolume xlator per brick (ProtocolClient or a
  // whole replicate group).
  template <typename X>
  explicit DistributeXlator(std::vector<std::unique_ptr<X>> subvols,
                            DistributeParams params = {})
      : params_(params) {
    for (auto& s : subvols) attach(std::move(s));
  }

  sim::Task<Expected<store::Attr>> create(std::string path,
                                          std::uint32_t mode) override;
  sim::Task<Expected<store::Attr>> open(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(std::string path, std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;
  sim::Task<Expected<void>> fsync(std::string path) override;

  std::string_view name() const override { return "distribute"; }

  // --- ServerHealth: down only while EVERY subvolume's backend is down
  // (the brownout-safety contract — see the definition) ---
  bool server_down() const override;
  SimTime server_down_since() const override;

  std::size_t subvol_count() const noexcept { return subvols_.size(); }
  // Current owner of `path` on the ring, as an index into subvol order.
  std::size_t subvol_of(const std::string& path) const;
  Xlator& subvol(std::size_t i) { return *subvols_.at(i).xl; }

  // Back-compat aliases (the pre-ring API).
  std::size_t brick_count() const noexcept { return subvol_count(); }
  std::size_t brick_of(const std::string& path) const {
    return subvol_of(path);
  }

  // Online ring membership. Adding/removing a subvolume migrates every
  // tracked path whose owner changed (staged copy + atomic swap + source
  // unlink). Run quiesced: concurrent fops on a migrating path race the
  // move. On error the ring keeps its new shape — re-run to finish.
  sim::Task<Expected<RebalanceReport>> add_brick(std::unique_ptr<Xlator> sv);
  sim::Task<Expected<RebalanceReport>> remove_brick(std::size_t index);

  const DistributeStats& stats() const noexcept { return stats_; }

 private:
  struct Subvol {
    std::uint32_t id = 0;
    std::unique_ptr<Xlator> xl;
    ServerHealth* health = nullptr;  // null for plain in-process xlators
  };

  void attach(std::unique_ptr<Xlator> xl);
  std::size_t index_of_id(std::uint32_t id) const;
  std::size_t owner_index(std::uint64_t point) const;
  Xlator& owner(const std::string& path) { return *subvols_[subvol_of(path)].xl; }
  static std::string stage_of(const std::string& path) {
    // '\x01' cannot appear in user paths; staged names never collide.
    return path + "\x01dht-stage";
  }
  // Copy (mode, data) to `path` on `dst` via stage + atomic swap.
  sim::Task<Expected<void>> stage_commit(Xlator* dst, std::string path,
                                         std::uint32_t mode, Buffer data);
  // Move `path` from `src` to `dst` (rebalance step). Bytes moved, 0 if the
  // path vanished from `src` in the meantime.
  sim::Task<Expected<std::uint64_t>> migrate_path(Xlator* src, Xlator* dst,
                                                  std::string path);
  // Reap an owed source unlink. True when the path is no longer owed.
  sim::Task<bool> sweep_pending(std::string path);

  DistributeParams params_;
  std::vector<Subvol> subvols_;
  std::uint32_t next_id_ = 0;
  // vnode point -> subvol id. Ordered: ring walks must be deterministic.
  std::map<std::uint64_t, std::uint32_t> ring_;
  // Paths created/seen through this xlator — the rebalance work list.
  std::set<std::string> live_paths_;
  // Renamed-away sources whose physical unlink is still owed: path -> the
  // subvol id holding the stale file. Fops treat these names as absent.
  std::map<std::string, std::uint32_t> pending_unlinks_;
  DistributeStats stats_;
};

}  // namespace imca::gluster
