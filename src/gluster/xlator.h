// The translator (xlator) abstraction GlusterFS is built from.
//
// GlusterFS composes file-system behaviour by stacking translators: each one
// intercepts fops on the way down and results on the way back up
// (STACK_WIND / STACK_UNWIND in the original). Our coroutine rendering is
// direct: winding is `co_await child_->fop(...)`; unwinding is the code
// after the await — which is exactly where the paper's SMCache installs its
// "hooks in the callback handler" (§4.1).
//
// The default implementation of every fop forwards to the child, so a
// translator overrides only what it cares about (CMCache overrides stat and
// read; SMCache overrides open/read/write/close/unlink; read-ahead overrides
// read; ...).
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/expected.h"
#include "common/units.h"
#include "sim/task.h"
#include "store/object_store.h"

namespace imca::gluster {

// What a caching translator may ask about the file server's reachability.
// Implemented by ProtocolClient (which learns about server death from its
// own ejection machinery); consumed by CMCache's brownout mode, which may
// serve bounded-staleness cache hits while the server is ejected
// (DESIGN.md §5f).
class ServerHealth {
 public:
  virtual ~ServerHealth() = default;
  // True while the server is ejected (consecutive-failure threshold hit and
  // no successful probe since).
  virtual bool server_down() const = 0;
  // When the current down episode began (meaningful only while down).
  virtual SimTime server_down_since() const = 0;
};

class Xlator {
 public:
  virtual ~Xlator() = default;

  // The translator below this one in the stack. Owned by the graph builder
  // (GlusterClient/GlusterServer), not by the translator.
  void set_child(Xlator* child) noexcept { child_ = child; }
  Xlator* child() const noexcept { return child_; }

  virtual sim::Task<Expected<store::Attr>> create(std::string path,
                                                  std::uint32_t mode);
  virtual sim::Task<Expected<store::Attr>> open(std::string path);
  virtual sim::Task<Expected<void>> close(std::string path);
  virtual sim::Task<Expected<store::Attr>> stat(std::string path);
  virtual sim::Task<Expected<Buffer>> read(std::string path,
                                           std::uint64_t offset,
                                           std::uint64_t len);
  virtual sim::Task<Expected<std::uint64_t>> write(std::string path,
                                                   std::uint64_t offset,
                                                   Buffer data);
  virtual sim::Task<Expected<void>> unlink(std::string path);
  // Durability barrier: flush anything buffered for `path` to stable
  // storage. Idempotent and state-free at the posix layer; write-behind and
  // the write-back tier override it to drain their buffers.
  virtual sim::Task<Expected<void>> fsync(std::string path);
  virtual sim::Task<Expected<void>> truncate(std::string path,
                                             std::uint64_t size);
  virtual sim::Task<Expected<void>> rename(std::string from,
                                           std::string to);

  // A short name for diagnostics ("posix", "cmcache", ...).
  virtual std::string_view name() const = 0;

  // Process-lifecycle notifications from the owning GlusterServer: crash()
  // kills the brick process, restart() boots a new one. A translator holding
  // volatile per-process state (queued cache updates, memoized sizes) loses
  // it here, exactly as the real daemon would. Default: stateless.
  virtual void on_server_crash() {}
  virtual void on_server_restart() {}

 protected:
  Xlator* child_ = nullptr;
};

}  // namespace imca::gluster
