// The GlusterFS client mount: FUSE bridge + client translator stack +
// protocol/client, exposing the common FileSystemClient API.
//
// GlusterFS keeps a small shim in the kernel and the rest in userspace;
// every fop pays two kernel/user crossings through FUSE (paper §2.1). The
// client keeps an fd -> absolute-path table, which is precisely the database
// CMCache consults ("on the open ... the absolute path of the file and the
// file descriptor is stored in a database", paper §4.3.2) — translators
// below the bridge all operate on absolute paths.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fsapi/filesystem.h"
#include "gluster/protocol_client.h"
#include "gluster/xlator.h"
#include "net/rpc.h"

namespace imca::gluster {

struct GlusterClientParams {
  SimDuration fuse_crossing = 7 * kMicro;  // one kernel<->user switch + copy
  // Deadline/retry/replay policy for the terminal translator (defaults are
  // the seed's single-attempt behaviour).
  ProtocolClientParams protocol = {};
};

class GlusterClient final : public fsapi::FileSystemClient {
 public:
  GlusterClient(net::RpcSystem& rpc, net::NodeId self, net::NodeId server,
                GlusterClientParams params = {});

  // Insert a translator above the current stack top (e.g. CMCache,
  // read-ahead). Must precede the first fop.
  void push_translator(std::unique_ptr<Xlator> xlator);

  // --- FileSystemClient ---
  sim::Task<Expected<fsapi::OpenFile>> create(std::string path) override;
  sim::Task<Expected<fsapi::OpenFile>> open(std::string path) override;
  sim::Task<Expected<void>> close(fsapi::OpenFile file) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(fsapi::OpenFile file,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(fsapi::OpenFile file,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;

  net::NodeId node() const noexcept { return self_; }
  Xlator& top() noexcept { return *stack_.back(); }
  // The terminal translator — health view for brownout, retry stats.
  ProtocolClient& protocol() noexcept {
    return *static_cast<ProtocolClient*>(stack_.front().get());
  }

 private:
  // Two FUSE crossings (request down, reply up) on the client CPU.
  sim::Task<void> fuse_charge();
  Expected<std::string> path_of(fsapi::OpenFile file) const;

  net::RpcSystem& rpc_;
  net::NodeId self_;
  GlusterClientParams params_;
  std::vector<std::unique_ptr<Xlator>> stack_;  // [0]=protocol/client
  std::unordered_map<std::uint64_t, std::string> fd_table_;
  std::uint64_t next_fd_ = 3;  // 0/1/2 are taken, as ever
};

}  // namespace imca::gluster
