// The GlusterFS client mount: FUSE bridge + client translator stack +
// protocol/client, exposing the common FileSystemClient API.
//
// GlusterFS keeps a small shim in the kernel and the rest in userspace;
// every fop pays two kernel/user crossings through FUSE (paper §2.1). The
// client keeps an fd -> absolute-path table, which is precisely the database
// CMCache consults ("on the open ... the absolute path of the file and the
// file descriptor is stored in a database", paper §4.3.2) — translators
// below the bridge all operate on absolute paths.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fsapi/filesystem.h"
#include "gluster/distribute.h"
#include "gluster/protocol_client.h"
#include "gluster/replicate.h"
#include "gluster/xlator.h"
#include "net/rpc.h"

namespace imca::gluster {

struct GlusterClientParams {
  SimDuration fuse_crossing = 7 * kMicro;  // one kernel<->user switch + copy
  // Deadline/retry/replay policy for the terminal translator (defaults are
  // the seed's single-attempt behaviour).
  ProtocolClientParams protocol = {};
  // Cluster-xlator knobs, used only by the topology constructor.
  ReplicateParams replicate = {};
  DistributeParams distribute = {};
};

// An N x K brick grid: `bricks` holds the server node of every brick in
// row-major order (group g, replica r at index g*replicas + r), and the
// mount composes distribute-over-replicate on top of one ProtocolClient per
// brick. {one node, replicas=1} degenerates to the classic single-brick
// mount.
struct GlusterTopology {
  std::vector<net::NodeId> bricks;
  std::size_t replicas = 1;
};

class GlusterClient final : public fsapi::FileSystemClient {
 public:
  GlusterClient(net::RpcSystem& rpc, net::NodeId self, net::NodeId server,
                GlusterClientParams params = {});
  // Mount an N x K brick grid (distribute over replicate).
  GlusterClient(net::RpcSystem& rpc, net::NodeId self,
                const GlusterTopology& topology,
                GlusterClientParams params = {});

  // Insert a translator above the current stack top (e.g. CMCache,
  // read-ahead). Must precede the first fop.
  void push_translator(std::unique_ptr<Xlator> xlator);

  // --- FileSystemClient ---
  sim::Task<Expected<fsapi::OpenFile>> create(std::string path) override;
  sim::Task<Expected<fsapi::OpenFile>> open(std::string path) override;
  sim::Task<Expected<void>> close(fsapi::OpenFile file) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(fsapi::OpenFile file,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(fsapi::OpenFile file,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;
  sim::Task<Expected<void>> fsync(fsapi::OpenFile file) override;

  net::NodeId node() const noexcept { return self_; }
  Xlator& top() noexcept { return *stack_.back(); }
  // The terminal translator — health view for brownout, retry stats. Valid
  // only for the classic single-brick mount; grid mounts expose health()
  // and protocol_totals() instead.
  ProtocolClient& protocol() noexcept {
    assert(pcs_.size() == 1 && "protocol() needs a single-brick mount");
    return *pcs_.front();
  }

  // --- grid topology views -------------------------------------------------
  // Backend health as CMCache's brownout machinery should see it: the PC on
  // a single-brick mount, the bottom cluster xlator on a grid.
  ServerHealth& health() noexcept { return *health_; }
  std::size_t n_groups() const noexcept {
    return groups_.empty() ? 1 : groups_.size();
  }
  // Null when group g is a bare ProtocolClient (replicas == 1).
  ReplicateXlator* replica_group(std::size_t g) noexcept {
    return groups_.empty() ? nullptr : groups_.at(g);
  }
  // Null on single-group mounts.
  DistributeXlator* distribute() noexcept { return dht_; }
  // Which replicate group owns `path` (0 on single-group mounts).
  std::size_t group_of(const std::string& path) const {
    return dht_ != nullptr ? dht_->subvol_of(path) : 0;
  }
  // Per-brick retry/replay counters summed across every ProtocolClient of
  // the mount (max_op_elapsed takes the max).
  ProtocolClientStats protocol_totals() const;
  // Drive self-heal to convergence on every replicate group.
  sim::Task<HealReport> heal_all();

 private:
  // Two FUSE crossings (request down, reply up) on the client CPU.
  sim::Task<void> fuse_charge();
  Expected<std::string> path_of(fsapi::OpenFile file) const;

  net::RpcSystem& rpc_;
  net::NodeId self_;
  GlusterClientParams params_;
  std::vector<std::unique_ptr<Xlator>> stack_;  // [0]=bottom cluster xlator
  // Non-owning views into the bottom of the stack (owned via stack_[0]).
  std::vector<ProtocolClient*> pcs_;       // one per brick, row-major
  std::vector<ReplicateXlator*> groups_;   // empty when replicas == 1
  DistributeXlator* dht_ = nullptr;        // null on single-group mounts
  ServerHealth* health_ = nullptr;
  std::unordered_map<std::uint64_t, std::string> fd_table_;
  std::uint64_t next_fd_ = 3;  // 0/1/2 are taken, as ever
};

}  // namespace imca::gluster
