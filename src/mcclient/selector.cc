#include "mcclient/selector.h"

#include <cassert>

namespace imca::mcclient {

ConsistentSelector::ConsistentSelector(std::size_t max_servers,
                                       std::size_t replicas)
    : max_servers_(max_servers), replicas_(replicas) {
  for (std::size_t s = 0; s < max_servers_; ++s) {
    for (std::size_t r = 0; r < replicas_; ++r) {
      const std::string point =
          "server-" + std::to_string(s) + "#" + std::to_string(r);
      // Ties (vanishingly rare) resolve to the smaller server index.
      auto [it, inserted] = ring_.emplace(crc32(point), s);
      if (!inserted && s < it->second) it->second = s;
    }
  }
}

std::size_t ConsistentSelector::pick(std::string_view key,
                                     std::optional<std::uint64_t>,
                                     std::size_t n) const {
  assert(n > 0 && n <= max_servers_);
  const std::uint32_t h = crc32(key);
  // Walk clockwise from h to the first point owned by a live server (< n),
  // wrapping at most twice around the ring.
  auto it = ring_.lower_bound(h);
  for (std::size_t hops = 0; hops < 2 * ring_.size() + 1; ++hops, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (it->second < n) return it->second;
  }
  return 0;  // unreachable with n >= 1
}

}  // namespace imca::mcclient
