// Key -> cache-server selection strategies.
//
//  * Crc32Selector      — libmemcache's default: (crc32(key)>>16 & 0x7fff)
//                         mod server count. Used by IMCa everywhere except
//                         the throughput study (paper §5.1).
//  * ModuloSelector     — the paper's Fig 9 replacement: a static modulo
//                         (round-robin) over the *block index*, which spreads
//                         consecutive blocks of one file across all daemons
//                         and aggregates their NIC bandwidth.
//  * ConsistentSelector — hash-ring placement (the paper's stated future
//                         work on "different hashing algorithms"); adding or
//                         removing a daemon remaps only ~1/N of the keys.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/crc32.h"

namespace imca::mcclient {

class ServerSelector {
 public:
  virtual ~ServerSelector() = default;

  // Pick a server in [0, n). `numeric_hint` carries the block index for
  // strategies that place by position rather than by key bytes.
  virtual std::size_t pick(std::string_view key,
                           std::optional<std::uint64_t> numeric_hint,
                           std::size_t n) const = 0;

  virtual std::string_view name() const = 0;
};

class Crc32Selector final : public ServerSelector {
 public:
  std::size_t pick(std::string_view key, std::optional<std::uint64_t>,
                   std::size_t n) const override {
    return libmemcache_hash(key) % n;
  }
  std::string_view name() const override { return "crc32"; }
};

class ModuloSelector final : public ServerSelector {
 public:
  std::size_t pick(std::string_view key,
                   std::optional<std::uint64_t> numeric_hint,
                   std::size_t n) const override {
    if (numeric_hint) return *numeric_hint % n;
    return libmemcache_hash(key) % n;  // keys with no position fall back
  }
  std::string_view name() const override { return "modulo"; }
};

class ConsistentSelector final : public ServerSelector {
 public:
  // `replicas` virtual points per server smooth the ring.
  explicit ConsistentSelector(std::size_t max_servers,
                              std::size_t replicas = 100);

  std::size_t pick(std::string_view key, std::optional<std::uint64_t>,
                   std::size_t n) const override;
  std::string_view name() const override { return "consistent"; }

 private:
  std::size_t max_servers_;
  std::size_t replicas_;
  // ring position -> server index, for the full server set; pick() walks to
  // the first point whose server index is < n (so shrinking the set keeps
  // most keys in place — the consistent-hashing property).
  std::map<std::uint32_t, std::size_t> ring_;
};

}  // namespace imca::mcclient
