// libmemcache-style client: talks the ASCII protocol to an array of MCDs
// over the simulated fabric.
//
// One McClient instance lives at each CMCache/SMCache translator. It owns
// the server list, routes each key through a ServerSelector, and implements
// libmemcache's failure behaviour: a daemon that refuses connections is
// marked dead and subsequent operations on it become misses/no-ops — IMCa
// keeps working because writes are always durable at the file server first
// (paper §4.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytebuf.h"
#include "common/units.h"
#include "common/expected.h"
#include "mcclient/selector.h"
#include "memcache/protocol.h"
#include "net/rpc.h"

namespace imca::mcclient {

struct ClientStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t dead_server_ops = 0;  // ops swallowed by a dead daemon
};

struct McClientParams {
  // Per-key cost at the client (key construction, request building, VALUE
  // parsing) — libmemcache does this work for every key of a multi-get.
  SimDuration per_key_cpu = 2 * kMicro;
  // Optional dedicated transport to the daemons (the paper's future-work
  // idea of reaching the cache bank over native IB verbs/RDMA instead of
  // TCP over IPoIB). Null = the fabric's default transport.
  std::optional<net::TransportParams> transport;
};

class McClient {
 public:
  // `self` is the node the client runs on; `servers` the MCD nodes.
  McClient(net::RpcSystem& rpc, net::NodeId self,
           std::vector<net::NodeId> servers,
           std::unique_ptr<ServerSelector> selector,
           McClientParams params = {});

  McClient(const McClient&) = delete;
  McClient& operator=(const McClient&) = delete;

  // Fetch one value. kNoEnt on a miss; a dead daemon also reads as a miss.
  sim::Task<Expected<memcache::Value>> get(
      std::string key, std::optional<std::uint64_t> hint = std::nullopt);

  // Fetch several keys, grouped into one multi-get per daemon (libmemcache
  // batches this way). Keys absent from the result missed.
  sim::Task<memcache::GetResult> multi_get(
      std::vector<std::string> keys,
      std::span<const std::uint64_t> hints = {});

  // Like multi_get, but the result is aligned with the input: slot i holds
  // keys[i]'s value, or nullopt on a miss. Callers that need to know which
  // keys missed (CMCache's partial-hit read path) get that for free, with no
  // per-key map lookups of their own and the values moved, not copied.
  // Duplicate input keys are not supported (only one slot is filled).
  sim::Task<std::vector<std::optional<memcache::Value>>> multi_get_ordered(
      std::vector<std::string> keys,
      std::span<const std::uint64_t> hints = {});

  // Store a value; kNoEnt if the daemon is dead (callers ignore: the data
  // is merely uncached), kTooBig/kKeyTooLong surface protocol limits.
  sim::Task<Expected<void>> set(std::string key,
                                std::span<const std::byte> data,
                                std::optional<std::uint64_t> hint = std::nullopt,
                                std::uint32_t flags = 0,
                                std::uint32_t exptime_s = 0);

  // Fetch with the item's cas id (the protocol's gets).
  sim::Task<Expected<memcache::Value>> gets(
      std::string key, std::optional<std::uint64_t> hint = std::nullopt);

  // Compare-and-swap against a cas id from gets(). kBusy if another writer
  // got there first, kNoEnt if the item vanished.
  sim::Task<Expected<void>> cas(std::string key,
                                std::span<const std::byte> data,
                                std::uint64_t cas_id,
                                std::optional<std::uint64_t> hint = std::nullopt);

  // Atomic counters (memcached incr/decr); returns the new value.
  sim::Task<Expected<std::uint64_t>> incr(
      std::string key, std::uint64_t delta,
      std::optional<std::uint64_t> hint = std::nullopt);
  sim::Task<Expected<std::uint64_t>> decr(
      std::string key, std::uint64_t delta,
      std::optional<std::uint64_t> hint = std::nullopt);

  // Remove a key (used by SMCache purge hooks). Missing keys are fine.
  sim::Task<Expected<void>> del(std::string key,
                                std::optional<std::uint64_t> hint = std::nullopt);

  // Per-daemon "stats" (the paper reads MCD miss/eviction counters).
  sim::Task<Expected<std::map<std::string, std::string>>> server_stats(
      std::size_t server_index);

  // Drop every item on every live daemon (one concurrent RPC per daemon).
  sim::Task<void> flush_all();

  // The event loop this client's fabric runs on; translators built over the
  // client use it to spawn fire-and-forget work (read-repair sets) and to
  // construct synchronization primitives.
  sim::EventLoop& loop() const noexcept { return rpc_.fabric().loop(); }

  std::size_t server_count() const noexcept { return servers_.size(); }
  const ClientStats& stats() const noexcept { return stats_; }
  const ServerSelector& selector() const noexcept { return *selector_; }
  bool server_dead(std::size_t i) const { return dead_.at(i); }

 private:
  std::size_t route(std::string_view key,
                    std::optional<std::uint64_t> hint) const {
    return selector_->pick(key, hint, servers_.size());
  }

  // Keys partitioned per daemon (moved, not copied), plus the inverse map so
  // ordered results can be reassembled: input slot i went to daemon
  // server_of[i] at position pos_of[i] within that daemon's group.
  struct KeyGroups {
    std::map<std::size_t, std::vector<std::string>> by_server;
    std::vector<std::size_t> server_of;
    std::vector<std::size_t> pos_of;
  };
  KeyGroups group_by_server(std::vector<std::string> keys,
                            std::span<const std::uint64_t> hints) const;

  sim::Task<Expected<ByteBuf>> call(std::size_t server, ByteBuf request);

  net::RpcSystem& rpc_;
  net::NodeId self_;
  std::vector<net::NodeId> servers_;
  std::unique_ptr<ServerSelector> selector_;
  McClientParams params_;
  std::vector<bool> dead_;
  ClientStats stats_;
};

}  // namespace imca::mcclient
