// libmemcache-style client: talks the ASCII protocol to an array of MCDs
// over the simulated fabric.
//
// One McClient instance lives at each CMCache/SMCache translator. It owns
// the server list, routes each key through a ServerSelector, and implements
// libmemcache's failure behaviour: a daemon that refuses connections is
// marked dead and subsequent operations on it become misses/no-ops — IMCa
// keeps working because writes are always durable at the file server first
// (paper §4.4).
//
// On top of that base (and off by default, so a client with default params
// behaves exactly like the original), the client implements the failover
// machinery of DESIGN.md §5d:
//
//   * per-op deadlines (`op_timeout`) racing each RPC against the sim clock;
//   * bounded retry with exponential backoff for unclean outcomes (timeout,
//     torn reply) — never for clean refusals, which mean the daemon is down
//     and, by the crash semantics, empty;
//   * ejection after `eject_after` consecutive unclean failures: a dead or
//     flaky daemon takes zero traffic and its keys degrade to misses;
//   * reintegration probes every `retry_dead_interval`, with a mandatory
//     purge-on-rejoin (flush the daemon, then mark it alive) so a revived
//     daemon can never serve blocks from before its crash window;
//   * writer mode (`reliable_mutations`): sets/deletes retry until a clean
//     outcome so a purge is never silently lost, and deletes bypass the
//     ejection list (`delete_bypasses_ejection`) to kill stale copies on a
//     daemon that restarted behind the writer's back.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytebuf.h"
#include "common/units.h"
#include "common/expected.h"
#include "mcclient/selector.h"
#include "memcache/protocol.h"
#include "net/rpc.h"

namespace imca::mcclient {

struct ClientStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t dead_server_ops = 0;  // ops swallowed by a dead daemon
  // --- failover machinery (all zero when faults are off) ---
  std::uint64_t timeouts = 0;           // per-op deadlines that fired
  std::uint64_t truncated_replies = 0;  // torn replies caught by framing check
  std::uint64_t retries = 0;            // re-sent attempts (excludes the first)
  std::uint64_t ejections = 0;          // servers ejected for unclean streaks
  std::uint64_t rejoins = 0;            // dead->alive transitions
  std::uint64_t rejoin_purges = 0;      // flushes issued by rejoins (== rejoins)
  std::uint64_t bypass_deletes = 0;     // deletes sent despite a dead mark

  // Monotone counter CMCache snapshots around an MCD exchange to detect that
  // the exchange was degraded by a fault (any kind).
  std::uint64_t fault_signals() const noexcept {
    return timeouts + truncated_replies + dead_server_ops;
  }
};

struct McClientParams {
  // Per-key cost at the client (key construction, request building, VALUE
  // parsing) — libmemcache does this work for every key of a multi-get.
  SimDuration per_key_cpu = 2 * kMicro;
  // Optional dedicated transport to the daemons (the paper's future-work
  // idea of reaching the cache bank over native IB verbs/RDMA instead of
  // TCP over IPoIB). Null = the fabric's default transport.
  std::optional<net::TransportParams> transport;

  // --- failover knobs (defaults = original libmemcache behaviour) ---
  // Per-attempt deadline; 0 = no deadline (wait for the transport).
  SimDuration op_timeout = 0;
  // Attempts per get/stat-shaped op (1 = no retry).
  std::size_t get_attempts = 1;
  // Attempts per mutation when `reliable_mutations` is set.
  std::size_t mutation_attempts = 1;
  // Backoff before retry k (0-based) is min(backoff_base << k, backoff_cap).
  SimDuration backoff_base = 200 * kMicro;
  SimDuration backoff_cap = 5 * kMilli;
  // Eject a server after this many *consecutive* unclean failures; 0 = never.
  std::size_t eject_after = 3;
  // Probe an ejected server for rejoin after this long; 0 = never (a dead
  // server stays dead, as in the original client).
  SimDuration retry_dead_interval = 0;
  // Writer mode: retry mutations until a clean outcome (success or refusal)
  // instead of ejecting on unclean ones. A refusal means the daemon lost its
  // contents with the crash, so skipping the publish/purge is safe; an
  // unclean outcome means it may still hold the item, so give up only after
  // `mutation_attempts` tries.
  bool reliable_mutations = false;
  // Writer mode: send deletes even to servers marked dead. A daemon that
  // restarted behind this client's back may hold a freshly repaired copy of
  // a block the writer is invalidating; the bypass delete kills it (and a
  // successful one doubles as a rejoin probe).
  bool delete_bypasses_ejection = false;
};

class McClient {
 public:
  // `self` is the node the client runs on; `servers` the MCD nodes.
  McClient(net::RpcSystem& rpc, net::NodeId self,
           std::vector<net::NodeId> servers,
           std::unique_ptr<ServerSelector> selector,
           McClientParams params = {});

  McClient(const McClient&) = delete;
  McClient& operator=(const McClient&) = delete;

  // Fetch one value. kNoEnt on a miss; a dead daemon also reads as a miss.
  sim::Task<Expected<memcache::Value>> get(
      std::string key, std::optional<std::uint64_t> hint = std::nullopt);

  // Fetch several keys, grouped into one multi-get per daemon (libmemcache
  // batches this way). Keys absent from the result missed.
  sim::Task<memcache::GetResult> multi_get(
      std::vector<std::string> keys,
      std::span<const std::uint64_t> hints = {});

  // Like multi_get, but the result is aligned with the input: slot i holds
  // keys[i]'s value, or nullopt on a miss. Callers that need to know which
  // keys missed (CMCache's partial-hit read path) get that for free, with no
  // per-key map lookups of their own and the values moved, not copied.
  // Duplicate input keys are not supported (only one slot is filled).
  sim::Task<std::vector<std::optional<memcache::Value>>> multi_get_ordered(
      std::vector<std::string> keys,
      std::span<const std::uint64_t> hints = {});

  // Store a value; kNoEnt if the daemon is dead (callers ignore: the data
  // is merely uncached), kTooBig/kKeyTooLong surface protocol limits.
  sim::Task<Expected<void>> set(std::string key, Buffer data,
                                std::optional<std::uint64_t> hint = std::nullopt,
                                std::uint32_t flags = 0,
                                std::uint32_t exptime_s = 0);

  // Store only if the key is absent (memcached add). kNotStored when a value
  // is already cached — the verb read-repair wants: a repair can never
  // clobber a fresher publish.
  sim::Task<Expected<void>> add(std::string key, Buffer data,
                                std::optional<std::uint64_t> hint = std::nullopt,
                                std::uint32_t flags = 0,
                                std::uint32_t exptime_s = 0);

  // Fetch with the item's cas id (the protocol's gets).
  sim::Task<Expected<memcache::Value>> gets(
      std::string key, std::optional<std::uint64_t> hint = std::nullopt);

  // Compare-and-swap against a cas id from gets(). kBusy if another writer
  // got there first, kNoEnt if the item vanished.
  sim::Task<Expected<void>> cas(std::string key, Buffer data,
                                std::uint64_t cas_id,
                                std::optional<std::uint64_t> hint = std::nullopt);

  // Atomic counters (memcached incr/decr); returns the new value.
  sim::Task<Expected<std::uint64_t>> incr(
      std::string key, std::uint64_t delta,
      std::optional<std::uint64_t> hint = std::nullopt);
  sim::Task<Expected<std::uint64_t>> decr(
      std::string key, std::uint64_t delta,
      std::optional<std::uint64_t> hint = std::nullopt);

  // Remove a key (used by SMCache purge hooks). Missing keys are fine.
  sim::Task<Expected<void>> del(std::string key,
                                std::optional<std::uint64_t> hint = std::nullopt);

  // --- pinned-server ops (write-back replication, DESIGN.md §5j) ---
  //
  // The write-back tier stores the same key on K *distinct* daemons, which
  // key hashing cannot guarantee; these variants address a daemon by index
  // (replica r of a key lives at (primary_of(key) + r) % server_count())
  // and otherwise run the full failover path of their routed twins.
  std::size_t primary_of(std::string_view key) const {
    return route(key, std::nullopt);
  }
  sim::Task<Expected<memcache::Value>> get_at(std::size_t server,
                                              std::string key);
  sim::Task<Expected<memcache::Value>> gets_at(std::size_t server,
                                               std::string key);
  sim::Task<Expected<void>> set_at(std::size_t server, std::string key,
                                   Buffer data, std::uint32_t flags = 0);
  sim::Task<Expected<void>> add_at(std::size_t server, std::string key,
                                   Buffer data, std::uint32_t flags = 0);
  sim::Task<Expected<void>> cas_at(std::size_t server, std::string key,
                                   Buffer data, std::uint64_t cas_id,
                                   std::uint32_t flags = 0);
  sim::Task<Expected<void>> del_at(std::size_t server, std::string key);

  // Per-daemon "stats" (the paper reads MCD miss/eviction counters).
  sim::Task<Expected<std::map<std::string, std::string>>> server_stats(
      std::size_t server_index);

  // Drop every item on every live daemon (one concurrent RPC per daemon).
  // Dead daemons are skipped, so a crashed MCD can't stall the sweep.
  sim::Task<void> flush_all();

  // The event loop this client's fabric runs on; translators built over the
  // client use it to spawn fire-and-forget work (read-repair sets) and to
  // construct synchronization primitives.
  sim::EventLoop& loop() const noexcept { return rpc_.fabric().loop(); }

  std::size_t server_count() const noexcept { return servers_.size(); }
  const ClientStats& stats() const noexcept { return stats_; }
  const ServerSelector& selector() const noexcept { return *selector_; }
  bool server_dead(std::size_t i) const { return dead_.at(i); }

 private:
  // How an op's outcome maps onto the failover machinery.
  enum class OpKind : std::uint8_t {
    kGet,       // degrade to a miss; ejection applies
    kMutation,  // retried-until-clean in writer mode
    kDelete,    // like kMutation, plus the ejection bypass
    kFlush,     // best-effort sweep; never retried
  };
  // Wire framing of an intact reply, so torn (short-read) replies can be
  // classified as retryable before the protocol parser sees them.
  enum class ReplyShape : std::uint8_t {
    kTerminated,  // ends with "END\r\n" (get / gets / stats)
    kLine,        // ends with "\r\n"    (store / delete / arith / flush)
  };

  std::size_t route(std::string_view key,
                    std::optional<std::uint64_t> hint) const {
    return selector_->pick(key, hint, servers_.size());
  }

  // Keys partitioned per daemon (moved, not copied), plus the inverse map so
  // ordered results can be reassembled: input slot i went to daemon
  // server_of[i] at position pos_of[i] within that daemon's group.
  struct KeyGroups {
    std::map<std::size_t, std::vector<std::string>> by_server;
    std::vector<std::size_t> server_of;
    std::vector<std::size_t> pos_of;
  };
  KeyGroups group_by_server(std::vector<std::string> keys,
                            std::span<const std::uint64_t> hints) const;

  // Full failover path: dead gate (with delete bypass and rejoin probes),
  // per-attempt deadline, framing check, retry/backoff, ejection.
  sim::Task<Expected<ByteBuf>> call(std::size_t server, ByteBuf request,
                                    OpKind op, ReplyShape shape);
  // One attempt: the raw RPC, raced against `op_timeout` when it is set.
  sim::Task<Expected<ByteBuf>> call_once(std::size_t server, ByteBuf request);
  // Purge-then-mark-alive. Every dead->alive transition funnels through here.
  sim::Task<bool> try_rejoin(std::size_t server);
  sim::Task<Expected<void>> store(memcache::StoreVerb verb, std::string key,
                                  Buffer data,
                                  std::optional<std::uint64_t> hint,
                                  std::uint32_t flags, std::uint32_t exptime_s);

  void mark_dead(std::size_t server);
  SimDuration backoff_delay(std::size_t retry_index) const;
  static bool reply_intact(const ByteBuf& resp, ReplyShape shape);

  net::RpcSystem& rpc_;
  net::NodeId self_;
  std::vector<net::NodeId> servers_;
  std::unique_ptr<ServerSelector> selector_;
  McClientParams params_;
  std::vector<bool> dead_;
  std::vector<std::size_t> unclean_streak_;
  std::vector<SimTime> next_probe_;
  ClientStats stats_;
};

}  // namespace imca::mcclient
