#include "mcclient/client.h"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "sim/sync.h"

namespace imca::mcclient {

using memcache::GetResult;
using memcache::StoreReply;
using memcache::StoreVerb;
using memcache::Value;

McClient::McClient(net::RpcSystem& rpc, net::NodeId self,
                   std::vector<net::NodeId> servers,
                   std::unique_ptr<ServerSelector> selector,
                   McClientParams params)
    : rpc_(rpc),
      self_(self),
      servers_(std::move(servers)),
      selector_(std::move(selector)),
      params_(params),
      dead_(servers_.size(), false),
      unclean_streak_(servers_.size(), 0),
      next_probe_(servers_.size(), 0) {
  assert(!servers_.empty());
  assert(selector_ != nullptr);
}

bool McClient::reply_intact(const ByteBuf& resp, ReplyShape shape) {
  return resp.ends_with(shape == ReplyShape::kTerminated ? "END\r\n" : "\r\n");
}

SimDuration McClient::backoff_delay(std::size_t retry_index) const {
  const SimDuration raw =
      params_.backoff_base << std::min<std::size_t>(retry_index, 16);
  return std::min(raw, params_.backoff_cap);
}

void McClient::mark_dead(std::size_t server) {
  dead_[server] = true;
  unclean_streak_[server] = 0;
  if (params_.retry_dead_interval > 0) {
    next_probe_[server] = loop().now() + params_.retry_dead_interval;
  }
}

sim::Task<Expected<ByteBuf>> McClient::call_once(std::size_t server,
                                                 ByteBuf request) {
  const net::TransportParams* t =
      params_.transport ? &*params_.transport : nullptr;
  if (params_.op_timeout == 0) {
    co_return co_await rpc_.call(self_, servers_[server], net::kPortMemcached,
                                 std::move(request), t);
  }

  // Race the RPC against the deadline. The RPC wrapper is detached: if the
  // deadline wins, the wrapper keeps running in the background (every fault
  // resolves in bounded sim time, so its frame always completes before the
  // loop drains) and its late result is discarded.
  struct Race {
    explicit Race(sim::EventLoop& l) : done(l) {}
    sim::Event done;
    std::optional<Expected<ByteBuf>> result;
  };
  auto race = std::make_shared<Race>(loop());
  loop().spawn([](McClient* c, std::size_t srv, ByteBuf req,
                  const net::TransportParams* tp,
                  std::shared_ptr<Race> r) -> sim::Task<void> {
    auto resp = co_await c->rpc_.call(c->self_, c->servers_[srv],
                                      net::kPortMemcached, std::move(req), tp);
    if (!r->done.is_set()) r->result.emplace(std::move(resp));
    r->done.set();
  }(this, server, std::move(request), t, race));
  sim::arm_timeout(loop(), std::shared_ptr<sim::Event>(race, &race->done),
                   params_.op_timeout);

  co_await race->done.wait();
  if (race->result) co_return std::move(*race->result);
  co_return Errc::kTimedOut;
}

sim::Task<bool> McClient::try_rejoin(std::size_t server) {
  // Mandatory purge-on-rejoin: flush the daemon *before* taking it back, so
  // a revived daemon can never serve an item from before its crash window or
  // a repair that raced the restart (DESIGN.md §5d). The flush is the clean
  // variant: write-back dirty items are the only copy of acked bytes, so a
  // probe may never wipe them from a daemon that stayed up while this client
  // merely thought it dead (a crashed daemon restarts empty either way).
  auto resp = co_await call_once(server, memcache::encode_flush_clean());
  if (resp && reply_intact(*resp, ReplyShape::kLine)) {
    dead_[server] = false;
    unclean_streak_[server] = 0;
    ++stats_.rejoins;
    ++stats_.rejoin_purges;
    co_return true;
  }
  if (params_.retry_dead_interval > 0) {
    next_probe_[server] = loop().now() + params_.retry_dead_interval;
  }
  co_return false;
}

sim::Task<Expected<ByteBuf>> McClient::call(std::size_t server,
                                            ByteBuf request, OpKind op,
                                            ReplyShape shape) {
  if (dead_[server]) {
    const bool bypass =
        op == OpKind::kDelete && params_.delete_bypasses_ejection;
    if (bypass) {
      ++stats_.bypass_deletes;
    } else if (params_.retry_dead_interval > 0 &&
               loop().now() >= next_probe_[server]) {
      // Push the next probe out first so concurrent ops don't stampede the
      // daemon with flushes while this one is in flight.
      next_probe_[server] = loop().now() + params_.retry_dead_interval;
      if (!co_await try_rejoin(server)) {
        ++stats_.dead_server_ops;
        co_return Errc::kConnRefused;
      }
      // Revived: fall through and run the op against the (now empty) daemon.
    } else {
      ++stats_.dead_server_ops;
      co_return Errc::kConnRefused;
    }
  }

  const bool reliable =
      params_.reliable_mutations &&
      (op == OpKind::kMutation || op == OpKind::kDelete);
  const std::size_t attempts = std::max<std::size_t>(
      1, reliable ? params_.mutation_attempts : params_.get_attempts);

  Errc last = Errc::kTimedOut;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      co_await loop().sleep(backoff_delay(attempt - 1));
    }
    ByteBuf wire = request;  // the RPC consumes its argument; retries re-copy
    // call() is awaited end-to-end by the front-end, which owns the
    // client — no destruction mid-suspension.
    // NOLINTNEXTLINE(imca-coro-this): frame awaited by the client's owner
    auto resp = co_await call_once(server, std::move(wire));

    if (resp && !reply_intact(*resp, shape)) {
      // Short read: the daemon processed the request but the reply is torn.
      // Same ambiguity as a lost reply, so classify it as unclean/retryable
      // rather than letting the protocol parser surface a hard kProto.
      ++stats_.truncated_replies;
      resp = Errc::kProto;
    }

    if (resp) {
      unclean_streak_[server] = 0;
      if (dead_[server]) {
        // A bypass delete reached a daemon that restarted behind our back.
        // Its cache may hold repairs from other clients made since; purge
        // and take it back (the delete itself already landed).
        co_await try_rejoin(server);
      }
      co_return resp;
    }

    last = resp.error();
    if (last == Errc::kConnRefused || last == Errc::kConnReset) {
      // Clean outcome: the daemon is down, and by the crash semantics its
      // contents died with it — skipping this op is safe, so never retry.
      mark_dead(server);
      ++stats_.dead_server_ops;
      co_return last;
    }

    // Unclean outcome (deadline fired or torn reply): the daemon may or may
    // not have applied the request and may still hold its items.
    if (last == Errc::kTimedOut) ++stats_.timeouts;
    if (!reliable && params_.eject_after > 0 &&
        ++unclean_streak_[server] >= params_.eject_after) {
      mark_dead(server);
      ++stats_.ejections;
      co_return last;
    }
  }
  co_return last;
}

sim::Task<Expected<Value>> McClient::get(std::string key,
                                         std::optional<std::uint64_t> hint) {
  ++stats_.gets;
  co_await rpc_.fabric().node(self_).cpu().use(params_.per_key_cpu);
  const std::size_t server = route(key, hint);
  const std::string keys[] = {key};
  auto resp = co_await call(server, memcache::encode_get(keys), OpKind::kGet,
                            ReplyShape::kTerminated);
  if (!resp) {
    ++stats_.misses;
    co_return Errc::kNoEnt;  // dead or unreachable daemon reads as a miss
  }
  auto parsed = memcache::parse_get_response(*resp);
  if (!parsed) {
    ++stats_.misses;
    co_return Errc::kNoEnt;  // torn reply that still framed: degrade to miss
  }
  auto it = parsed->find(key);
  if (it == parsed->end()) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  ++stats_.hits;
  co_return std::move(it->second);
}

McClient::KeyGroups McClient::group_by_server(
    std::vector<std::string> keys,
    std::span<const std::uint64_t> hints) const {
  const std::size_t n = keys.size();
  KeyGroups g;
  g.server_of.resize(n);
  g.pos_of.resize(n);
  // Route everything first so each group can reserve its exact size; then
  // move (never copy) each key into its group, preserving input order within
  // the group.
  std::map<std::size_t, std::size_t> group_size;
  for (std::size_t i = 0; i < n; ++i) {
    const auto hint = hints.empty()
                          ? std::optional<std::uint64_t>{}
                          : std::optional<std::uint64_t>{hints[i]};
    g.server_of[i] = route(keys[i], hint);
    ++group_size[g.server_of[i]];
  }
  for (const auto& [server, count] : group_size) {
    g.by_server[server].reserve(count);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto& group = g.by_server[g.server_of[i]];
    g.pos_of[i] = group.size();
    group.push_back(std::move(keys[i]));
  }
  return g;
}

sim::Task<GetResult> McClient::multi_get(std::vector<std::string> keys,
                                         std::span<const std::uint64_t> hints) {
  assert(hints.empty() || hints.size() == keys.size());
  const std::size_t n = keys.size();
  auto groups = group_by_server(std::move(keys), hints);
  stats_.gets += n;
  co_await rpc_.fabric().node(self_).cpu().use(n * params_.per_key_cpu);

  // One batched get per daemon, issued concurrently (libmemcache writes all
  // requests before draining any response). Each batch runs through the full
  // failover path, so a daemon dying mid-batch costs at most the per-op
  // deadline schedule instead of stalling the whole read.
  GetResult merged;
  std::vector<sim::Task<void>> calls;
  calls.reserve(groups.by_server.size());
  for (auto& [server, group] : groups.by_server) {
    calls.push_back([](McClient& c, std::size_t srv,
                       std::vector<std::string> keys_for_server,
                       GetResult& out) -> sim::Task<void> {
      auto resp = co_await c.call(srv, memcache::encode_get(keys_for_server),
                                  OpKind::kGet, ReplyShape::kTerminated);
      if (!resp) co_return;  // whole group misses
      auto parsed = memcache::parse_get_response(*resp);
      if (!parsed) co_return;
      out.merge(*parsed);
    }(*this, server, group, merged));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(calls));
  stats_.hits += merged.size();
  stats_.misses += n - merged.size();
  co_return merged;
}

sim::Task<std::vector<std::optional<Value>>> McClient::multi_get_ordered(
    std::vector<std::string> keys, std::span<const std::uint64_t> hints) {
  assert(hints.empty() || hints.size() == keys.size());
  const std::size_t n = keys.size();
  std::vector<std::optional<Value>> out(n);
  if (n == 0) co_return out;
  auto groups = group_by_server(std::move(keys), hints);
  stats_.gets += n;
  co_await rpc_.fabric().node(self_).cpu().use(n * params_.per_key_cpu);

  // One batched get per daemon, parsed into a per-daemon result map.
  std::map<std::size_t, GetResult> parsed;
  std::vector<sim::Task<void>> calls;
  calls.reserve(groups.by_server.size());
  for (auto& [server, group] : groups.by_server) {
    calls.push_back([](McClient& c, std::size_t srv,
                       std::vector<std::string> keys_for_server,
                       GetResult& out_map) -> sim::Task<void> {
      auto resp = co_await c.call(srv, memcache::encode_get(keys_for_server),
                                  OpKind::kGet, ReplyShape::kTerminated);
      if (!resp) co_return;  // whole group misses
      auto p = memcache::parse_get_response(*resp);
      if (!p) co_return;
      out_map = std::move(*p);
    }(*this, server, group, parsed[server]));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(calls));

  // Reassemble in input order, moving each hit out of its response map.
  std::size_t hit_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& key = groups.by_server[groups.server_of[i]][groups.pos_of[i]];
    auto node = parsed[groups.server_of[i]].extract(key);
    if (!node.empty()) {
      out[i].emplace(std::move(node.mapped()));
      ++hit_count;
    }
  }
  stats_.hits += hit_count;
  stats_.misses += n - hit_count;
  co_return out;
}

sim::Task<Expected<void>> McClient::store(StoreVerb verb, std::string key,
                                          Buffer data,
                                          std::optional<std::uint64_t> hint,
                                          std::uint32_t flags,
                                          std::uint32_t exptime_s) {
  ++stats_.sets;
  const std::size_t server = route(key, hint);
  auto resp =
      co_await call(server,
                    memcache::encode_store(verb, key, flags, exptime_s, data),
                    OpKind::kMutation, ReplyShape::kLine);
  if (!resp) {
    // Dead daemon: the value is merely uncached.
    if (resp.error() == Errc::kConnRefused || resp.error() == Errc::kConnReset)
      co_return Errc::kNoEnt;
    co_return resp.error();
  }
  auto parsed = memcache::parse_store_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case StoreReply::kStored:
      co_return Expected<void>{};
    case StoreReply::kNotStored:
      co_return Errc::kNotStored;
    case StoreReply::kServerError:
      co_return Errc::kTooBig;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<void>> McClient::set(std::string key, Buffer data,
                                        std::optional<std::uint64_t> hint,
                                        std::uint32_t flags,
                                        std::uint32_t exptime_s) {
  co_return co_await store(StoreVerb::kSet, std::move(key), std::move(data),
                           hint, flags, exptime_s);
}

sim::Task<Expected<void>> McClient::add(std::string key, Buffer data,
                                        std::optional<std::uint64_t> hint,
                                        std::uint32_t flags,
                                        std::uint32_t exptime_s) {
  co_return co_await store(StoreVerb::kAdd, std::move(key), std::move(data),
                           hint, flags, exptime_s);
}

sim::Task<Expected<Value>> McClient::gets(std::string key,
                                          std::optional<std::uint64_t> hint) {
  ++stats_.gets;
  co_await rpc_.fabric().node(self_).cpu().use(params_.per_key_cpu);
  const std::size_t server = route(key, hint);
  const std::string keys[] = {key};
  auto resp = co_await call(server, memcache::encode_gets(keys), OpKind::kGet,
                            ReplyShape::kTerminated);
  if (!resp) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  auto parsed = memcache::parse_get_response(*resp);
  if (!parsed) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  auto it = parsed->find(key);
  if (it == parsed->end()) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  ++stats_.hits;
  co_return std::move(it->second);
}

sim::Task<Expected<void>> McClient::cas(std::string key, Buffer data,
                                        std::uint64_t cas_id,
                                        std::optional<std::uint64_t> hint) {
  ++stats_.sets;
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_cas(key, 0, 0, data, cas_id),
                            OpKind::kMutation, ReplyShape::kLine);
  if (!resp) co_return Errc::kNoEnt;
  auto parsed = memcache::parse_cas_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case memcache::CasReply::kStored:
      co_return Expected<void>{};
    case memcache::CasReply::kExists:
      co_return Errc::kBusy;
    case memcache::CasReply::kNotFound:
      co_return Errc::kNoEnt;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<std::uint64_t>> McClient::incr(
    std::string key, std::uint64_t delta, std::optional<std::uint64_t> hint) {
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_incr(key, delta),
                            OpKind::kMutation, ReplyShape::kLine);
  if (!resp) co_return Errc::kNoEnt;
  co_return memcache::parse_arith_response(*resp);
}

sim::Task<Expected<std::uint64_t>> McClient::decr(
    std::string key, std::uint64_t delta, std::optional<std::uint64_t> hint) {
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_decr(key, delta),
                            OpKind::kMutation, ReplyShape::kLine);
  if (!resp) co_return Errc::kNoEnt;
  co_return memcache::parse_arith_response(*resp);
}

sim::Task<Expected<void>> McClient::del(std::string key,
                                        std::optional<std::uint64_t> hint) {
  ++stats_.deletes;
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_delete(key),
                            OpKind::kDelete, ReplyShape::kLine);
  if (!resp) {
    if (resp.error() == Errc::kConnRefused || resp.error() == Errc::kConnReset)
      co_return Errc::kNoEnt;  // dead daemon: nothing cached to purge
    co_return resp.error();
  }
  auto parsed = memcache::parse_delete_response(*resp);
  if (!parsed) co_return parsed.error();
  co_return Expected<void>{};  // DELETED and NOT_FOUND both fine for purges
}

sim::Task<Expected<memcache::Value>> McClient::get_at(std::size_t server,
                                                      std::string key) {
  ++stats_.gets;
  co_await rpc_.fabric().node(self_).cpu().use(params_.per_key_cpu);
  const std::string keys[] = {key};
  auto resp = co_await call(server, memcache::encode_get(keys), OpKind::kGet,
                            ReplyShape::kTerminated);
  if (!resp) {
    ++stats_.misses;
    co_return resp.error();  // dead/unreachable: caller tells miss from down
  }
  auto parsed = memcache::parse_get_response(*resp);
  if (!parsed) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  auto it = parsed->find(key);
  if (it == parsed->end()) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  ++stats_.hits;
  co_return std::move(it->second);
}

sim::Task<Expected<memcache::Value>> McClient::gets_at(std::size_t server,
                                                       std::string key) {
  ++stats_.gets;
  co_await rpc_.fabric().node(self_).cpu().use(params_.per_key_cpu);
  const std::string keys[] = {key};
  auto resp = co_await call(server, memcache::encode_gets(keys), OpKind::kGet,
                            ReplyShape::kTerminated);
  if (!resp) {
    ++stats_.misses;
    co_return resp.error();
  }
  auto parsed = memcache::parse_get_response(*resp);
  if (!parsed) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  auto it = parsed->find(key);
  if (it == parsed->end()) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  ++stats_.hits;
  co_return std::move(it->second);
}

sim::Task<Expected<void>> McClient::set_at(std::size_t server, std::string key,
                                           Buffer data, std::uint32_t flags) {
  ++stats_.sets;
  auto resp = co_await call(
      server, memcache::encode_store(StoreVerb::kSet, key, flags, 0, data),
      OpKind::kMutation, ReplyShape::kLine);
  if (!resp) co_return resp.error();
  auto parsed = memcache::parse_store_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case StoreReply::kStored:
      co_return Expected<void>{};
    case StoreReply::kNotStored:
      co_return Errc::kNotStored;
    case StoreReply::kServerError:
      co_return Errc::kTooBig;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<void>> McClient::add_at(std::size_t server, std::string key,
                                           Buffer data, std::uint32_t flags) {
  ++stats_.sets;
  auto resp = co_await call(
      server, memcache::encode_store(StoreVerb::kAdd, key, flags, 0, data),
      OpKind::kMutation, ReplyShape::kLine);
  if (!resp) co_return resp.error();
  auto parsed = memcache::parse_store_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case StoreReply::kStored:
      co_return Expected<void>{};
    case StoreReply::kNotStored:
      co_return Errc::kNotStored;
    case StoreReply::kServerError:
      co_return Errc::kTooBig;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<void>> McClient::cas_at(std::size_t server, std::string key,
                                           Buffer data, std::uint64_t cas_id,
                                           std::uint32_t flags) {
  ++stats_.sets;
  auto resp =
      co_await call(server, memcache::encode_cas(key, flags, 0, data, cas_id),
                    OpKind::kMutation, ReplyShape::kLine);
  if (!resp) co_return resp.error();
  auto parsed = memcache::parse_cas_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case memcache::CasReply::kStored:
      co_return Expected<void>{};
    case memcache::CasReply::kExists:
      co_return Errc::kBusy;
    case memcache::CasReply::kNotFound:
      co_return Errc::kNoEnt;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<void>> McClient::del_at(std::size_t server,
                                           std::string key) {
  ++stats_.deletes;
  auto resp = co_await call(server, memcache::encode_delete(key),
                            OpKind::kDelete, ReplyShape::kLine);
  if (!resp) co_return resp.error();
  auto parsed = memcache::parse_delete_response(*resp);
  if (!parsed) co_return parsed.error();
  co_return Expected<void>{};  // DELETED and NOT_FOUND both fine
}

sim::Task<Expected<std::map<std::string, std::string>>>
McClient::server_stats(std::size_t server_index) {
  auto resp = co_await call(server_index, memcache::encode_stats(),
                            OpKind::kGet, ReplyShape::kTerminated);
  if (!resp) co_return resp.error();
  co_return memcache::parse_stats_response(*resp);
}

sim::Task<void> McClient::flush_all() {
  // One flush per daemon, issued concurrently: the wall-clock cost is one
  // round trip to the slowest daemon, not a serial sweep of the whole bank.
  std::vector<sim::Task<void>> calls;
  calls.reserve(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    calls.push_back([](McClient& c, std::size_t srv) -> sim::Task<void> {
      (void)co_await c.call(srv, memcache::encode_flush_all(), OpKind::kFlush,
                            ReplyShape::kLine);
    }(*this, s));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(calls));
}

}  // namespace imca::mcclient
