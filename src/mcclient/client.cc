#include "mcclient/client.h"

#include <cassert>

#include "sim/sync.h"

namespace imca::mcclient {

using memcache::GetResult;
using memcache::StoreReply;
using memcache::Value;

McClient::McClient(net::RpcSystem& rpc, net::NodeId self,
                   std::vector<net::NodeId> servers,
                   std::unique_ptr<ServerSelector> selector,
                   McClientParams params)
    : rpc_(rpc),
      self_(self),
      servers_(std::move(servers)),
      selector_(std::move(selector)),
      params_(params),
      dead_(servers_.size(), false) {
  assert(!servers_.empty());
  assert(selector_ != nullptr);
}

sim::Task<Expected<ByteBuf>> McClient::call(std::size_t server,
                                            ByteBuf request) {
  if (dead_[server]) {
    ++stats_.dead_server_ops;
    co_return Errc::kConnRefused;
  }
  auto resp = co_await rpc_.call(
      self_, servers_[server], net::kPortMemcached, std::move(request),
      params_.transport ? &*params_.transport : nullptr);
  if (!resp && (resp.error() == Errc::kConnRefused ||
                resp.error() == Errc::kConnReset)) {
    dead_[server] = true;  // libmemcache marks the server down
    ++stats_.dead_server_ops;
  }
  co_return resp;
}

sim::Task<Expected<Value>> McClient::get(std::string key,
                                         std::optional<std::uint64_t> hint) {
  ++stats_.gets;
  co_await rpc_.fabric().node(self_).cpu().use(params_.per_key_cpu);
  const std::size_t server = route(key, hint);
  const std::string keys[] = {key};
  auto resp = co_await call(server, memcache::encode_get(keys));
  if (!resp) {
    ++stats_.misses;
    co_return Errc::kNoEnt;  // dead daemon reads as a miss
  }
  auto parsed = memcache::parse_get_response(*resp);
  if (!parsed) co_return parsed.error();
  auto it = parsed->find(key);
  if (it == parsed->end()) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  ++stats_.hits;
  co_return std::move(it->second);
}

McClient::KeyGroups McClient::group_by_server(
    std::vector<std::string> keys,
    std::span<const std::uint64_t> hints) const {
  const std::size_t n = keys.size();
  KeyGroups g;
  g.server_of.resize(n);
  g.pos_of.resize(n);
  // Route everything first so each group can reserve its exact size; then
  // move (never copy) each key into its group, preserving input order within
  // the group.
  std::map<std::size_t, std::size_t> group_size;
  for (std::size_t i = 0; i < n; ++i) {
    const auto hint = hints.empty()
                          ? std::optional<std::uint64_t>{}
                          : std::optional<std::uint64_t>{hints[i]};
    g.server_of[i] = route(keys[i], hint);
    ++group_size[g.server_of[i]];
  }
  for (const auto& [server, count] : group_size) {
    g.by_server[server].reserve(count);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto& group = g.by_server[g.server_of[i]];
    g.pos_of[i] = group.size();
    group.push_back(std::move(keys[i]));
  }
  return g;
}

sim::Task<GetResult> McClient::multi_get(std::vector<std::string> keys,
                                         std::span<const std::uint64_t> hints) {
  assert(hints.empty() || hints.size() == keys.size());
  const std::size_t n = keys.size();
  auto groups = group_by_server(std::move(keys), hints);
  stats_.gets += n;
  co_await rpc_.fabric().node(self_).cpu().use(n * params_.per_key_cpu);

  // One batched get per daemon, issued concurrently (libmemcache writes all
  // requests before draining any response).
  GetResult merged;
  std::vector<sim::Task<void>> calls;
  calls.reserve(groups.by_server.size());
  for (auto& [server, group] : groups.by_server) {
    calls.push_back([](McClient& c, std::size_t srv,
                       const std::vector<std::string>& keys_for_server,
                       GetResult& out) -> sim::Task<void> {
      auto resp =
          co_await c.call(srv, memcache::encode_get(keys_for_server));
      if (!resp) co_return;  // whole group misses
      auto parsed = memcache::parse_get_response(*resp);
      if (!parsed) co_return;
      out.merge(*parsed);
    }(*this, server, group, merged));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(calls));
  stats_.hits += merged.size();
  stats_.misses += n - merged.size();
  co_return merged;
}

sim::Task<std::vector<std::optional<Value>>> McClient::multi_get_ordered(
    std::vector<std::string> keys, std::span<const std::uint64_t> hints) {
  assert(hints.empty() || hints.size() == keys.size());
  const std::size_t n = keys.size();
  std::vector<std::optional<Value>> out(n);
  if (n == 0) co_return out;
  auto groups = group_by_server(std::move(keys), hints);
  stats_.gets += n;
  co_await rpc_.fabric().node(self_).cpu().use(n * params_.per_key_cpu);

  // One batched get per daemon, parsed into a per-daemon result map.
  std::map<std::size_t, GetResult> parsed;
  std::vector<sim::Task<void>> calls;
  calls.reserve(groups.by_server.size());
  for (auto& [server, group] : groups.by_server) {
    calls.push_back([](McClient& c, std::size_t srv,
                       const std::vector<std::string>& keys_for_server,
                       GetResult& out_map) -> sim::Task<void> {
      auto resp =
          co_await c.call(srv, memcache::encode_get(keys_for_server));
      if (!resp) co_return;  // whole group misses
      auto p = memcache::parse_get_response(*resp);
      if (!p) co_return;
      out_map = std::move(*p);
    }(*this, server, group, parsed[server]));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(calls));

  // Reassemble in input order, moving each hit out of its response map.
  std::size_t hit_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& key = groups.by_server[groups.server_of[i]][groups.pos_of[i]];
    auto node = parsed[groups.server_of[i]].extract(key);
    if (!node.empty()) {
      out[i].emplace(std::move(node.mapped()));
      ++hit_count;
    }
  }
  stats_.hits += hit_count;
  stats_.misses += n - hit_count;
  co_return out;
}

sim::Task<Expected<void>> McClient::set(std::string key,
                                        std::span<const std::byte> data,
                                        std::optional<std::uint64_t> hint,
                                        std::uint32_t flags,
                                        std::uint32_t exptime_s) {
  ++stats_.sets;
  const std::size_t server = route(key, hint);
  auto resp = co_await call(
      server, memcache::encode_store(memcache::StoreVerb::kSet, key, flags,
                                     exptime_s, data));
  if (!resp) co_return Errc::kNoEnt;  // dead daemon: value simply uncached
  auto parsed = memcache::parse_store_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case StoreReply::kStored:
      co_return Expected<void>{};
    case StoreReply::kNotStored:
      co_return Errc::kNotStored;
    case StoreReply::kServerError:
      co_return Errc::kTooBig;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<Value>> McClient::gets(std::string key,
                                          std::optional<std::uint64_t> hint) {
  ++stats_.gets;
  co_await rpc_.fabric().node(self_).cpu().use(params_.per_key_cpu);
  const std::size_t server = route(key, hint);
  const std::string keys[] = {key};
  auto resp = co_await call(server, memcache::encode_gets(keys));
  if (!resp) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  auto parsed = memcache::parse_get_response(*resp);
  if (!parsed) co_return parsed.error();
  auto it = parsed->find(key);
  if (it == parsed->end()) {
    ++stats_.misses;
    co_return Errc::kNoEnt;
  }
  ++stats_.hits;
  co_return std::move(it->second);
}

sim::Task<Expected<void>> McClient::cas(std::string key,
                                        std::span<const std::byte> data,
                                        std::uint64_t cas_id,
                                        std::optional<std::uint64_t> hint) {
  ++stats_.sets;
  const std::size_t server = route(key, hint);
  auto resp = co_await call(
      server, memcache::encode_cas(key, 0, 0, data, cas_id));
  if (!resp) co_return Errc::kNoEnt;
  auto parsed = memcache::parse_cas_response(*resp);
  if (!parsed) co_return parsed.error();
  switch (*parsed) {
    case memcache::CasReply::kStored:
      co_return Expected<void>{};
    case memcache::CasReply::kExists:
      co_return Errc::kBusy;
    case memcache::CasReply::kNotFound:
      co_return Errc::kNoEnt;
  }
  co_return Errc::kProto;
}

sim::Task<Expected<std::uint64_t>> McClient::incr(
    std::string key, std::uint64_t delta, std::optional<std::uint64_t> hint) {
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_incr(key, delta));
  if (!resp) co_return Errc::kNoEnt;
  co_return memcache::parse_arith_response(*resp);
}

sim::Task<Expected<std::uint64_t>> McClient::decr(
    std::string key, std::uint64_t delta, std::optional<std::uint64_t> hint) {
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_decr(key, delta));
  if (!resp) co_return Errc::kNoEnt;
  co_return memcache::parse_arith_response(*resp);
}

sim::Task<Expected<void>> McClient::del(std::string key,
                                        std::optional<std::uint64_t> hint) {
  ++stats_.deletes;
  const std::size_t server = route(key, hint);
  auto resp = co_await call(server, memcache::encode_delete(key));
  if (!resp) co_return Errc::kNoEnt;
  auto parsed = memcache::parse_delete_response(*resp);
  if (!parsed) co_return parsed.error();
  co_return Expected<void>{};  // DELETED and NOT_FOUND both fine for purges
}

sim::Task<Expected<std::map<std::string, std::string>>>
McClient::server_stats(std::size_t server_index) {
  auto resp = co_await call(server_index, memcache::encode_stats());
  if (!resp) co_return resp.error();
  co_return memcache::parse_stats_response(*resp);
}

sim::Task<void> McClient::flush_all() {
  // One flush per daemon, issued concurrently: the wall-clock cost is one
  // round trip to the slowest daemon, not a serial sweep of the whole bank.
  std::vector<sim::Task<void>> calls;
  calls.reserve(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    calls.push_back([](McClient& c, std::size_t srv) -> sim::Task<void> {
      (void)co_await c.call(srv, memcache::encode_flush_all());
    }(*this, s));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(calls));
}

}  // namespace imca::mcclient
