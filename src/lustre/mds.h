// Lustre-like metadata server (MDS) with a distributed lock manager.
//
// The paper contrasts IMCa's lockless cache bank with Lustre's coherent
// client caches: "Lustre uses locking with the metadata server acting as a
// lock manager ... Writes are flushed before locks are released. With a
// large number of clients, the overhead of maintaining locks and keeping the
// client caches coherent increases" (§1). This MDS implements exactly that
// cost structure:
//
//   * namespace ops (create/stat/unlink) are RPCs to the MDS node;
//   * clients take per-file PR (read) or PW (write) locks before caching;
//     granted locks are cached client-side until revoked;
//   * a conflicting request forces the MDS to revoke every conflicting
//     holder — one callback round trip per holder, plus a dirty-page flush
//     by write holders — before the new lock is granted.
//
// Lock state lives at the MDS; each client registers a revocation handler so
// the MDS can invalidate its cache synchronously (the simulation analogue of
// an LDLM blocking callback).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "net/rpc.h"
#include "sim/sync.h"
#include "store/block_device.h"
#include "store/object_store.h"

namespace imca::lustre {

enum class LockMode : std::uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

struct MdsParams {
  SimDuration op_cpu = 70 * kMicro;        // per metadata op / lock op
  std::size_t raid_members = 2;            // MDS has its own small array
  store::DiskParams disk = {};
  std::uint64_t page_cache_bytes = 4 * kGiB;
};

class MetadataServer {
 public:
  // Client-side hook the MDS calls (after charging the callback round trip)
  // when it revokes a lock. `requested` is the mode the competing client
  // asked for — Lustre's blocking callbacks carry the conflicting mode, and
  // stacked caches need it: only a writer's arrival invalidates data.
  using RevokeFn = std::function<sim::Task<void>(std::string path,
                                                 LockMode requested)>;

  MetadataServer(net::RpcSystem& rpc, net::NodeId node, MdsParams params = {});

  net::NodeId node() const noexcept { return node_; }
  store::ObjectStore& namespace_store() noexcept { return ns_; }

  // --- metadata ops (invoked via the owning client's RPC wrappers) ---
  sim::Task<Expected<store::Attr>> create(std::string path);
  sim::Task<Expected<store::Attr>> stat(std::string path);
  sim::Task<Expected<void>> unlink(std::string path);
  // Size updates flow back from clients after writes (Lustre's size-on-MDS
  // simplification of its glimpse protocol).
  sim::Task<Expected<void>> set_size(std::string path,
                                     std::uint64_t size);
  // Explicit truncate: unlike set_size, the size may shrink.
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size);
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to);

  // --- lock manager ---
  // Grant `mode` on `path` to `client`, revoking conflicting holders first.
  sim::Task<Expected<void>> lock(std::string path, std::uint32_t client,
                                 LockMode mode);
  void register_client(std::uint32_t client, RevokeFn revoke);
  // Drop every lock `client` holds (unmount — the paper's cold-cache knob).
  void drop_client_locks(std::uint32_t client);

  std::uint64_t lock_requests() const noexcept { return lock_requests_; }
  std::uint64_t revocations() const noexcept { return revocations_; }

 private:
  struct LockState {
    // Per-holder granted mode; compatibility is judged against the other
    // holders' modes, not a single aggregate.
    std::map<std::uint32_t, LockMode> holders;
  };

  sim::Task<void> charge_op();

  net::RpcSystem& rpc_;
  net::NodeId node_;
  MdsParams params_;
  store::ObjectStore ns_;  // attributes only; file bytes live on the DSs
  store::BlockDevice dev_;
  std::map<std::string, LockState> locks_;
  std::map<std::uint32_t, RevokeFn> clients_;
  sim::SimMutex lock_mutex_;  // serializes lock-manager state transitions
  std::uint64_t lock_requests_ = 0;
  std::uint64_t revocations_ = 0;
};

}  // namespace imca::lustre
