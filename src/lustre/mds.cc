#include "lustre/mds.h"

namespace imca::lustre {

MetadataServer::MetadataServer(net::RpcSystem& rpc, net::NodeId node,
                               MdsParams params)
    : rpc_(rpc),
      node_(node),
      params_(params),
      dev_(rpc.fabric().loop(), params.raid_members, params.disk,
           params.page_cache_bytes, "mds" + std::to_string(node)),
      lock_mutex_(rpc.fabric().loop()) {}

sim::Task<void> MetadataServer::charge_op() {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
}

sim::Task<Expected<store::Attr>> MetadataServer::create(
    std::string path) {
  co_await charge_op();
  auto attr = ns_.create(path, rpc_.fabric().loop().now());
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<store::Attr>> MetadataServer::stat(std::string path) {
  co_await charge_op();
  auto attr = ns_.stat(path);
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<void>> MetadataServer::unlink(std::string path) {
  co_await charge_op();
  auto attr = ns_.stat(path);
  if (!attr) co_return attr.error();
  auto r = ns_.unlink(path);
  if (!r) co_return r;
  dev_.invalidate(attr->inode);
  locks_.erase(path);
  co_return Expected<void>{};
}

sim::Task<Expected<void>> MetadataServer::set_size(std::string path,
                                                   std::uint64_t size) {
  co_await charge_op();
  auto attr = ns_.stat(path);
  if (!attr) co_return Errc::kNoEnt;
  // Extending writes record the new size; overwrites still bump mtime.
  const std::uint64_t new_size = size > attr->size ? size : attr->size;
  co_return ns_.truncate(path, new_size, rpc_.fabric().loop().now());
}

sim::Task<Expected<void>> MetadataServer::truncate(std::string path,
                                                   std::uint64_t size) {
  co_await charge_op();
  co_return ns_.truncate(path, size, rpc_.fabric().loop().now());
}

sim::Task<Expected<void>> MetadataServer::rename(std::string from,
                                                 std::string to) {
  co_await charge_op();
  auto r = ns_.rename(from, to, rpc_.fabric().loop().now());
  if (r) {
    // Lock state follows the name.
    auto it = locks_.find(from);
    if (it != locks_.end()) {
      locks_[to] = std::move(it->second);
      locks_.erase(it);
    }
  }
  co_return r;
}

void MetadataServer::register_client(std::uint32_t client, RevokeFn revoke) {
  clients_[client] = std::move(revoke);
}

void MetadataServer::drop_client_locks(std::uint32_t client) {
  for (auto& [path, state] : locks_) {
    state.holders.erase(client);
  }
}

sim::Task<Expected<void>> MetadataServer::lock(std::string path,
                                               std::uint32_t client,
                                               LockMode mode) {
  ++lock_requests_;
  co_await charge_op();
  // Lock-manager state transitions are serialized, queueing concurrent
  // requesters — the scalability cost the paper attributes to coherent
  // client caches.
  auto guard = co_await sim::ScopedLock::acquire(lock_mutex_);

  LockState& state = locks_[path];
  // A holder conflicts when either side wants exclusivity (PW).
  const auto conflicts = [&](std::uint32_t holder, LockMode held) {
    return holder != client &&
           (mode == LockMode::kWrite || held == LockMode::kWrite);
  };

  // Revoke every conflicting holder: one callback round trip each, during
  // which the holder drops (and, for writers, flushes) its cache.
  const auto holders = state.holders;
  for (const auto& [h, held] : holders) {
    if (!conflicts(h, held)) continue;
    ++revocations_;
    // Blocking-callback round trip MDS -> holder -> MDS.
    co_await rpc_.fabric().transfer(node_, h, 128);
    auto it = clients_.find(h);
    if (it != clients_.end()) {
      co_await it->second(path, mode);
    }
    co_await rpc_.fabric().transfer(h, node_, 128);
    state.holders.erase(h);
  }

  state.holders[client] = mode;
  co_return Expected<void>{};
}

}  // namespace imca::lustre
