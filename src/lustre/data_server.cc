#include "lustre/data_server.h"

namespace imca::lustre {

DataServer::DataServer(net::RpcSystem& rpc, net::NodeId node, DsParams params)
    : rpc_(rpc),
      node_(node),
      params_(params),
      dev_(rpc.fabric().loop(), params.raid_members, params.disk,
           params.page_cache_bytes, "ost" + std::to_string(node)) {}

sim::Task<Expected<Buffer>> DataServer::read(std::string object,
                                             std::uint64_t offset,
                                             std::uint64_t len) {
  co_await rpc_.fabric().node(node_).cpu().use(
      params_.op_cpu + transfer_time(len, params_.copy_bps));
  auto attr = objects_.stat(object);
  if (!attr) co_return Buffer{};  // sparse object: zero bytes
  co_await dev_.read(attr->inode, offset, len);
  auto data = objects_.read(object, offset, len);
  if (!data) co_return data.error();
  co_return std::move(*data);
}

sim::Task<Expected<std::uint64_t>> DataServer::write(
    std::string object, std::uint64_t offset, Buffer data) {
  co_await rpc_.fabric().node(node_).cpu().use(
      params_.op_cpu + transfer_time(data.size(), params_.copy_bps));
  if (!objects_.exists(object)) {
    (void)objects_.create(object, rpc_.fabric().loop().now());
  }
  auto size = objects_.write(object, offset, data,
                             rpc_.fabric().loop().now());
  if (!size) co_return size.error();
  const auto attr = objects_.stat(object);
  co_await dev_.write(attr->inode, offset, data.size());
  co_return data.size();
}

sim::Task<Expected<void>> DataServer::remove(std::string object) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  if (objects_.exists(object)) {
    const auto attr = objects_.stat(object);
    dev_.invalidate(attr->inode);
    (void)objects_.unlink(object);
  }
  co_return Expected<void>{};
}

sim::Task<Expected<void>> DataServer::truncate_object(
    std::string object, std::uint64_t local_size) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  if (!objects_.exists(object)) co_return Expected<void>{};  // sparse
  const auto attr = objects_.stat(object);
  if (local_size < attr->size) dev_.invalidate(attr->inode);
  co_return objects_.truncate(object, local_size,
                              rpc_.fabric().loop().now());
}

sim::Task<Expected<void>> DataServer::rename_object(std::string from,
                                                    std::string to) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  if (!objects_.exists(from)) {
    // This DS held no stripes of the file; make sure no stale target stays.
    (void)objects_.unlink(to);
    co_return Expected<void>{};
  }
  co_return objects_.rename(from, to, rpc_.fabric().loop().now());
}

}  // namespace imca::lustre
