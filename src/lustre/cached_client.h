// CachedLustreClient — the paper's future work #3, prototyped:
//
//   "We also plan on researching how the set of cache servers may be
//    integrated into a file system such as Lustre, where it can potentially
//    interact with the client and server caches." (§7)
//
// Design. The wrapper stacks the MCD bank *above* a coherent LustreClient
// and reuses Lustre's own DLM as the coherence protocol for the bank:
//
//   * read  — take (or reuse) the PR lock through the inner client, then try
//     the bank; a fully-cached block run is returned without touching the
//     data servers. On a miss, the aligned covering region is fetched
//     through the inner client and published to the bank from this client
//     (there is no server-side hook in Lustre, unlike SMCache).
//   * write — delegated to the inner client (PW lock, write-through,
//     durable), then the covering blocks are republished. The PW lock's
//     exclusivity makes the writer the only publisher for the file.
//   * revocation — when the MDS revokes this client's lock, the hook purges
//     every block this client published for that path, so a new writer
//     starts from a bank with none of our (about-to-be-stale) copies.
//
// Coherence window. A publish in flight when a revocation lands could put a
// stale block back after the purge. Each revocation therefore bumps a
// per-path epoch; publishers re-check the epoch after their last set and,
// if it moved, purge what they just published. This closes the race up to
// one bounded re-purge — the same "delayed updates" residual the paper
// accepts for SMCache's threaded mode (§4.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "fsapi/filesystem.h"
#include "imca/block_mapper.h"
#include "imca/keys.h"
#include "lustre/client.h"
#include "mcclient/client.h"

namespace imca::lustre {

struct CachedLustreStats {
  std::uint64_t reads_from_bank = 0;
  std::uint64_t reads_from_lustre = 0;
  std::uint64_t blocks_published = 0;
  std::uint64_t revocation_purges = 0;
  std::uint64_t epoch_republish_races = 0;  // post-publish purges
};

class CachedLustreClient final : public fsapi::FileSystemClient {
 public:
  CachedLustreClient(LustreClient& inner,
                     std::unique_ptr<mcclient::McClient> bank,
                     std::uint64_t block_size = 2 * kKiB);

  sim::Task<Expected<fsapi::OpenFile>> create(std::string path) override;
  sim::Task<Expected<fsapi::OpenFile>> open(std::string path) override;
  sim::Task<Expected<void>> close(fsapi::OpenFile file) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(fsapi::OpenFile file, std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(fsapi::OpenFile file,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;

  const CachedLustreStats& stats() const noexcept { return stats_; }

 private:
  struct PathState {
    std::uint64_t epoch = 0;            // bumped by every revocation
    std::uint64_t published_extent = 0; // highest byte we pushed to the bank
  };

  sim::Task<void> publish_region(std::string path, std::uint64_t start,
                                 Buffer data);
  sim::Task<void> purge_published(std::string path);
  // LDLM revoke hook body (named coroutine: the registered lambda only
  // forwards, so no frame ever refers to a dead lambda object).
  sim::Task<void> on_revoke(std::string path, LockMode requested);
  Expected<std::string> path_of(fsapi::OpenFile file) const;

  LustreClient& inner_;
  std::unique_ptr<mcclient::McClient> bank_;
  core::BlockMapper mapper_;
  std::map<std::string, PathState> state_;
  std::map<std::uint64_t, std::string> fd_table_;
  CachedLustreStats stats_;
};

}  // namespace imca::lustre
