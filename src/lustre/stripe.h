// Stripe geometry for the Lustre-like comparator.
//
// Files are striped RAID-0 style across data servers (OSTs) with a fixed
// stripe size (Lustre's default is 1 MB). Global file offsets map to
// (server, local offset) pairs; each data server stores its stripes
// contiguously in its local object space.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace imca::lustre {

struct StripePiece {
  std::size_t server;          // data-server index
  std::uint64_t local_offset;  // offset inside the server's local object
  std::uint64_t global_offset;
  std::uint64_t length;
};

class StripeMapper {
 public:
  StripeMapper(std::size_t servers, std::uint64_t stripe_size = 1 * kMiB)
      : servers_(servers), stripe_size_(stripe_size) {}

  std::size_t servers() const noexcept { return servers_; }
  std::uint64_t stripe_size() const noexcept { return stripe_size_; }

  // Split [offset, offset+len) into per-server pieces, in global order.
  std::vector<StripePiece> map(std::uint64_t offset, std::uint64_t len) const {
    std::vector<StripePiece> out;
    std::uint64_t pos = offset;
    std::uint64_t left = len;
    while (left > 0) {
      const std::uint64_t stripe = pos / stripe_size_;
      const std::uint64_t within = pos % stripe_size_;
      const std::uint64_t chunk = std::min(left, stripe_size_ - within);
      out.push_back(StripePiece{
          .server = static_cast<std::size_t>(stripe % servers_),
          .local_offset = (stripe / servers_) * stripe_size_ + within,
          .global_offset = pos,
          .length = chunk,
      });
      pos += chunk;
      left -= chunk;
    }
    return out;
  }

 private:
  std::size_t servers_;
  std::uint64_t stripe_size_;
};

}  // namespace imca::lustre
