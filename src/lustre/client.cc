#include "lustre/client.h"

#include "common/hash.h"
#include "sim/sync.h"

namespace imca::lustre {

LustreClient::LustreClient(net::RpcSystem& rpc, net::NodeId self,
                           MetadataServer& mds,
                           std::vector<DataServer*> data_servers,
                           LustreClientParams params)
    : rpc_(rpc),
      self_(self),
      mds_(mds),
      ds_(std::move(data_servers)),
      stripes_(ds_.size()),
      params_(params),
      pages_(params.cache_bytes) {
  // Register the LDLM blocking callback: drop our pages when revoked. The
  // lambda only forwards to the named member coroutine (IMCA-CORO-LAMBDA).
  mds_.register_client(self_, [this](std::string path, LockMode requested) {
    return on_lock_revoked(std::move(path), requested);
  });
}

sim::Task<void> LustreClient::on_lock_revoked(std::string path,
                                              LockMode requested) {
  pages_.invalidate(cache_key(path));
  lock_cache_.erase(path);
  // Writes are write-through in this client, so there is nothing dirty
  // to flush; a flush would otherwise be charged here before the lock
  // moves.
  if (revoke_hook_) co_await revoke_hook_(path, requested);
}

std::uint64_t LustreClient::cache_key(const std::string& path) const {
  return fnv1a64(path);
}

sim::Task<void> LustreClient::charge_rpc(net::NodeId peer,
                                         std::uint64_t req_bytes,
                                         std::uint64_t reply_bytes) {
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  co_await rpc_.fabric().transfer(self_, peer, req_bytes);
  co_await rpc_.fabric().transfer(peer, self_, reply_bytes);
}

sim::Task<Expected<void>> LustreClient::ensure_lock(std::string path,
                                                    LockMode mode) {
  auto it = lock_cache_.find(path);
  if (it != lock_cache_.end() &&
      (it->second == mode || it->second == LockMode::kWrite)) {
    co_return Expected<void>{};  // lock already cached locally
  }
  // Lock RPC to the MDS (the enqueue round trip).
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  auto r = co_await mds_.lock(path, self_, mode);
  if (!r) co_return r;
  lock_cache_[path] = mode;
  co_return Expected<void>{};
}

Expected<std::string> LustreClient::path_of(fsapi::OpenFile file) const {
  auto it = fd_table_.find(file.fd);
  if (it == fd_table_.end()) return Errc::kBadF;
  return it->second;
}

sim::Task<Expected<fsapi::OpenFile>> LustreClient::create(std::string path) {
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  auto attr = co_await mds_.create(path);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<fsapi::OpenFile>> LustreClient::open(std::string path) {
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  auto attr = co_await mds_.stat(path);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<void>> LustreClient::close(fsapi::OpenFile file) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  fd_table_.erase(file.fd);
  // Locks and pages stay cached after close — that is the point of a
  // coherent client cache.
  co_return Expected<void>{};
}

sim::Task<Expected<store::Attr>> LustreClient::stat(std::string path) {
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  co_return co_await mds_.stat(path);
}

sim::Task<Expected<Buffer>> LustreClient::read(fsapi::OpenFile file,
                                               std::uint64_t offset,
                                               std::uint64_t len) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  if (auto l = co_await ensure_lock(*path, LockMode::kRead); !l) {
    co_return l.error();
  }

  // File size comes from the MDS view of the namespace (kept current by
  // set_size on every write).
  auto attr = mds_.namespace_store().stat(*path);
  if (!attr) co_return Errc::kStale;
  if (offset >= attr->size) co_return Buffer{};
  const std::uint64_t n = std::min(len, attr->size - offset);

  const auto key = cache_key(*path);
  if (!cache_disabled_ && pages_.covered(key, offset, n)) {
    // Warm read: local memory. Zero network; peek the coherent bytes.
    ++cache_hits_;
    co_await rpc_.fabric().node(self_).cpu().use(
        params_.op_cpu + transfer_time(n, 4 * kGiB));
    (void)pages_.access(key, offset, n);  // refresh LRU
  } else {
    ++cache_misses_;
    // Fetch every stripe piece from its DS, concurrently.
    const auto pieces = stripes_.map(offset, n);
    std::vector<sim::Task<void>> fetches;
    for (const auto& p : pieces) {
      fetches.push_back([](LustreClient& c, StripePiece piece,
                           std::string obj) -> sim::Task<void> {
        co_await c.rpc_.fabric().transfer(c.self_, c.ds_[piece.server]->node(),
                                          c.params_.rpc_request_bytes);
        (void)co_await c.ds_[piece.server]->read(obj, piece.local_offset,
                                                 piece.length);
        co_await c.rpc_.fabric().transfer(c.ds_[piece.server]->node(), c.self_,
                                          piece.length);
      }(*this, p, *path));
    }
    co_await sim::when_all(rpc_.fabric().loop(), std::move(fetches));
    if (!cache_disabled_) pages_.populate(key, offset, n);
  }

  // Assemble the actual bytes from the DS objects (ground truth) by
  // splicing each stripe piece's segment into one buffer.
  Buffer out;
  for (const auto& p : stripes_.map(offset, n)) {
    auto piece = ds_[p.server]->objects().read(*path, p.local_offset, p.length);
    if (!piece) co_return piece.error();
    if (piece->size() < p.length) {
      // Sparse stripes read back as zeros.
      piece->append(Buffer::zeros(p.length - piece->size()));
    }
    out.append(std::move(*piece));
  }
  co_return out;
}

sim::Task<Expected<std::uint64_t>> LustreClient::write(fsapi::OpenFile file,
                                                       std::uint64_t offset,
                                                       Buffer data) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  if (auto l = co_await ensure_lock(*path, LockMode::kWrite); !l) {
    co_return l.error();
  }

  // Write-through to every stripe's DS, concurrently. Each stripe piece is
  // a zero-copy view of the caller's buffer.
  const auto pieces = stripes_.map(offset, data.size());
  std::vector<sim::Task<void>> stores;
  for (const auto& p : pieces) {
    Buffer slice = data.slice(p.global_offset - offset, p.length);
    stores.push_back([](LustreClient& c, StripePiece piece, std::string obj,
                        Buffer bytes) -> sim::Task<void> {
      co_await c.rpc_.fabric().transfer(c.self_, c.ds_[piece.server]->node(),
                                        bytes.size() + c.params_.rpc_request_bytes);
      (void)co_await c.ds_[piece.server]->write(obj, piece.local_offset,
                                                std::move(bytes));
      co_await c.rpc_.fabric().transfer(c.ds_[piece.server]->node(), c.self_,
                                        c.params_.rpc_reply_bytes);
      // NOLINTNEXTLINE(imca-coro-this): when_all joins every child below.
    }(*this, p, *path, std::move(slice)));
  }
  co_await sim::when_all(rpc_.fabric().loop(), std::move(stores));
  pages_.populate(cache_key(*path), offset, data.size());

  // Report the (possibly) new size to the MDS.
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  (void)co_await mds_.set_size(*path, offset + data.size());
  co_return data.size();
}

sim::Task<Expected<void>> LustreClient::unlink(std::string path) {
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  auto r = co_await mds_.unlink(path);
  if (!r) co_return r;
  for (auto* ds : ds_) {
    (void)co_await ds->remove(path);
  }
  pages_.invalidate(cache_key(path));
  lock_cache_.erase(path);
  co_return Expected<void>{};
}

sim::Task<Expected<void>> LustreClient::truncate(std::string path,
                                                 std::uint64_t size) {
  if (auto l = co_await ensure_lock(path, LockMode::kWrite); !l) {
    co_return l.error();
  }
  // Truncate each data server's local object to its share of `size`.
  const std::uint64_t ss = stripes_.stripe_size();
  for (std::size_t k = 0; k < ds_.size(); ++k) {
    std::uint64_t local = 0;
    for (std::uint64_t j = k; j * ss < size; j += ds_.size()) {
      local += std::min(size - j * ss, ss);
    }
    co_await rpc_.fabric().transfer(self_, ds_[k]->node(),
                                    params_.rpc_request_bytes);
    (void)co_await ds_[k]->truncate_object(path, local);
    co_await rpc_.fabric().transfer(ds_[k]->node(), self_,
                                    params_.rpc_reply_bytes);
  }
  pages_.invalidate(cache_key(path));
  co_await charge_rpc(mds_.node(), params_.rpc_request_bytes,
                      params_.rpc_reply_bytes);
  co_return co_await mds_.truncate(path, size);
}

sim::Task<Expected<void>> LustreClient::rename(std::string from,
                                               std::string to) {
  if (auto l = co_await ensure_lock(from, LockMode::kWrite); !l) {
    co_return l.error();
  }
  co_await charge_rpc(mds_.node(),
                      params_.rpc_request_bytes + from.size() + to.size(),
                      params_.rpc_reply_bytes);
  auto r = co_await mds_.rename(from, to);
  if (!r) co_return r;
  for (auto* ds : ds_) {
    co_await rpc_.fabric().transfer(self_, ds->node(),
                                    params_.rpc_request_bytes);
    (void)co_await ds->rename_object(from, to);
    co_await rpc_.fabric().transfer(ds->node(), self_,
                                    params_.rpc_reply_bytes);
  }
  pages_.invalidate(cache_key(from));
  pages_.invalidate(cache_key(to));
  if (auto it = lock_cache_.find(from); it != lock_cache_.end()) {
    lock_cache_[to] = it->second;
    lock_cache_.erase(it);
  }
  for (auto& [fd, p] : fd_table_) {
    if (p == from) p = to;
  }
  co_return Expected<void>{};
}

void LustreClient::cold() {
  pages_.clear();
  lock_cache_.clear();
  mds_.drop_client_locks(self_);
  cache_disabled_ = true;
}

}  // namespace imca::lustre
