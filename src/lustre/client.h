// Lustre-like client: kernel-space file system client with a coherent,
// lock-protected page cache.
//
// Contrast with GlusterFS (paper §1/§2): no FUSE crossings (Lustre's client
// is in the kernel), a real client-side cache (the paper's "Warm" runs serve
// reads from it at near-local latency), and MDS-managed locks paid on first
// access to every file — the coherency overhead that grows with client
// count.
//
// cold() models the paper's cold-cache methodology: "the Lustre client file
// system is unmounted and then remounted. This evicts any data from the
// client cache" (§5.3) — pages and cached locks are dropped; server-side
// caches stay warm.
//
// Simulation note: cached reads return bytes peeked directly from the DS
// object stores without charging time or network. The peek is exact, not a
// shortcut around coherence: a conflicting writer must first take a PW lock,
// which revokes this client's lock and drops its pages, so whenever the
// cache is valid the DS bytes equal the cached bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fsapi/filesystem.h"
#include "lustre/data_server.h"
#include "lustre/mds.h"
#include "lustre/stripe.h"
#include "net/rpc.h"
#include "store/page_cache.h"

namespace imca::lustre {

struct LustreClientParams {
  SimDuration op_cpu = 4 * kMicro;          // kernel VFS path, no FUSE
  std::uint64_t cache_bytes = 2 * kGiB;     // client page cache
  std::uint64_t rpc_request_bytes = 128;    // small-op wire sizes
  std::uint64_t rpc_reply_bytes = 160;
};

class LustreClient final : public fsapi::FileSystemClient {
 public:
  LustreClient(net::RpcSystem& rpc, net::NodeId self, MetadataServer& mds,
               std::vector<DataServer*> data_servers,
               LustreClientParams params = {});

  // --- FileSystemClient ---
  sim::Task<Expected<fsapi::OpenFile>> create(std::string path) override;
  sim::Task<Expected<fsapi::OpenFile>> open(std::string path) override;
  sim::Task<Expected<void>> close(fsapi::OpenFile file) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(fsapi::OpenFile file, std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(fsapi::OpenFile file,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;

  // Take (or reuse) a cached PR lock on `path` — exposed for layers that
  // stack caching above this client (lustre::CachedLustreClient) and need
  // the coherence epoch the lock defines.
  sim::Task<Expected<void>> lock_for_read(std::string path) {
    return ensure_lock(path, LockMode::kRead);
  }

  // Called (and awaited) whenever the MDS revokes one of this client's
  // locks, after the client's own pages are dropped. Stacked caches use it
  // to invalidate their tier; `requested` is the competing lock mode.
  void set_revoke_hook(std::function<sim::Task<void>(
                           std::string path, LockMode requested)>
                           hook) {
    revoke_hook_ = std::move(hook);
  }

  // Unmount/remount ("Cold" runs, paper §5.3): drop the page cache and every
  // cached lock, and stop caching reads until warm() is called. The paper's
  // cold curves pay a remote fetch for every record (they track IMCa rather
  // than local-memory latency), which means the remounted client served no
  // reads from local pages during the measured sweep; disabling the cache
  // reproduces that observable directly.
  void cold();
  // Re-enable the client cache (fresh mounts are warmable by default).
  void warm() { cache_disabled_ = false; }

  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }

 private:
  sim::Task<void> charge_rpc(net::NodeId peer, std::uint64_t req_bytes,
                             std::uint64_t reply_bytes);
  sim::Task<Expected<void>> ensure_lock(std::string path,
                                        LockMode mode);
  // MDS revoke callback body (named coroutine; the registered lambda only
  // forwards).
  sim::Task<void> on_lock_revoked(std::string path, LockMode requested);
  Expected<std::string> path_of(fsapi::OpenFile file) const;
  std::uint64_t cache_key(const std::string& path) const;

  net::RpcSystem& rpc_;
  net::NodeId self_;
  MetadataServer& mds_;
  std::vector<DataServer*> ds_;
  StripeMapper stripes_;
  LustreClientParams params_;

  store::PageCache pages_;
  std::function<sim::Task<void>(std::string path, LockMode requested)>
      revoke_hook_;
  bool cache_disabled_ = false;
  std::map<std::string, LockMode> lock_cache_;
  std::map<std::uint64_t, std::string> fd_table_;
  std::uint64_t next_fd_ = 3;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace imca::lustre
