#include "lustre/cached_client.h"

#include <algorithm>

namespace imca::lustre {

using core::data_key;

CachedLustreClient::CachedLustreClient(
    LustreClient& inner, std::unique_ptr<mcclient::McClient> bank,
    std::uint64_t block_size)
    : inner_(inner), bank_(std::move(bank)), mapper_(block_size) {
  // The forwarding lambda is not itself a coroutine (IMCA-CORO-LAMBDA):
  // the frame that suspends belongs to the named member coroutine, whose
  // parameters are its own copies.
  inner_.set_revoke_hook([this](std::string path, LockMode requested) {
    return on_revoke(std::move(path), requested);
  });
}

sim::Task<void> CachedLustreClient::on_revoke(std::string path,
                                              LockMode requested) {
  // A reader's arrival (PR) leaves our published data valid — only a
  // writer about to change the bytes forces a purge.
  if (requested != LockMode::kWrite) co_return;
  auto it = state_.find(path);
  if (it == state_.end()) co_return;
  ++it->second.epoch;
  ++stats_.revocation_purges;
  co_await purge_published(path);
}

Expected<std::string> CachedLustreClient::path_of(fsapi::OpenFile file) const {
  auto it = fd_table_.find(file.fd);
  if (it == fd_table_.end()) return Errc::kBadF;
  return it->second;
}

sim::Task<void> CachedLustreClient::purge_published(std::string path) {
  auto it = state_.find(path);
  if (it == state_.end()) co_return;
  const std::uint64_t bs = mapper_.block_size();
  const std::uint64_t extent = it->second.published_extent;
  for (std::uint64_t off = 0; off < extent; off += bs) {
    (void)co_await bank_->del(data_key(path, off), mapper_.index_of(off));
  }
  it->second.published_extent = 0;
}

sim::Task<void> CachedLustreClient::publish_region(std::string path,
                                                   std::uint64_t start,
                                                   Buffer data) {
  PathState& st = state_[path];
  const std::uint64_t epoch_at_start = st.epoch;
  const std::uint64_t bs = mapper_.block_size();
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    if (st.epoch != epoch_at_start) break;  // revoked mid-publish: stop
    const std::uint64_t n = std::min<std::uint64_t>(bs, data.size() - pos);
    (void)co_await bank_->set(data_key(path, start + pos), data.slice(pos, n),
                              mapper_.index_of(start + pos));
    ++stats_.blocks_published;
    st.published_extent = std::max(st.published_extent, start + pos + n);
    pos += n;
  }
  if (st.epoch != epoch_at_start) {
    // A revocation interleaved with our sets: anything we landed after its
    // purge is stale — remove it (the bounded re-purge of the header note).
    ++stats_.epoch_republish_races;
    co_await purge_published(path);
  }
}

sim::Task<Expected<fsapi::OpenFile>> CachedLustreClient::create(
    std::string path) {
  auto f = co_await inner_.create(path);
  if (!f) co_return f;
  fd_table_.emplace(f->fd, std::move(path));
  co_return f;
}

sim::Task<Expected<fsapi::OpenFile>> CachedLustreClient::open(
    std::string path) {
  auto f = co_await inner_.open(path);
  if (!f) co_return f;
  fd_table_.emplace(f->fd, std::move(path));
  co_return f;
}

sim::Task<Expected<void>> CachedLustreClient::close(fsapi::OpenFile file) {
  fd_table_.erase(file.fd);
  co_return co_await inner_.close(file);
}

sim::Task<Expected<store::Attr>> CachedLustreClient::stat(std::string path) {
  co_return co_await inner_.stat(std::move(path));
}

sim::Task<Expected<Buffer>> CachedLustreClient::read(fsapi::OpenFile file,
                                                     std::uint64_t offset,
                                                     std::uint64_t len) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  if (len == 0) co_return Buffer{};

  // The PR lock defines the coherence epoch: while we hold it, no writer can
  // have changed the file (a writer's PW enqueue revokes us first, and the
  // revocation hook purges our bank entries).
  if (auto l = co_await inner_.lock_for_read(*path); !l) co_return l.error();

  const auto blocks = mapper_.covering(offset, len);
  std::vector<std::string> keys;
  std::vector<std::uint64_t> hints;
  for (const auto b : blocks) {
    keys.push_back(data_key(*path, mapper_.start_of(b)));
    hints.push_back(b);
  }
  auto got = co_await bank_->multi_get(keys, hints);

  Buffer assembled;
  bool complete = true;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = got.find(keys[i]);
    if (it == got.end()) {
      if (assembled.size() == i * mapper_.block_size()) complete = false;
      break;
    }
    const std::size_t block_len = it->second.data.size();
    assembled.append(std::move(it->second.data));  // splice, no copy
    if (block_len < mapper_.block_size()) break;  // EOF block
  }

  if (complete) {
    ++stats_.reads_from_bank;
    const std::uint64_t skip = offset - mapper_.align_down(offset);
    if (assembled.size() <= skip) co_return Buffer{};
    co_return assembled.slice(skip, len);
  }

  // Miss: fetch the aligned covering region through Lustre and publish it
  // (client-side population — Lustre has no SMCache analogue).
  ++stats_.reads_from_lustre;
  const std::uint64_t start = mapper_.align_down(offset);
  const std::uint64_t length = mapper_.aligned_length(offset, len);
  auto region = co_await inner_.read(file, start, length);
  if (!region) co_return region;
  co_await publish_region(*path, start, *region);

  const std::uint64_t skip = offset - start;
  if (region->size() <= skip) co_return Buffer{};
  co_return region->slice(skip, len);
}

sim::Task<Expected<std::uint64_t>> CachedLustreClient::write(
    fsapi::OpenFile file, std::uint64_t offset, Buffer data) {
  auto path = path_of(file);
  if (!path) co_return path.error();

  // Durability first, through Lustre's own PW-locked write-through path.
  const std::uint64_t data_size = data.size();
  auto written = co_await inner_.write(file, offset, std::move(data));
  if (!written) co_return written;

  // We now hold the PW lock: we are the only client allowed to publish.
  // Read the aligned covering region back (warm: the inner client just
  // cached it) and push it to the bank.
  const std::uint64_t start = mapper_.align_down(offset);
  const std::uint64_t length = mapper_.aligned_length(offset, data_size);
  auto region = co_await inner_.read(file, start, length);
  if (region) {
    co_await publish_region(*path, start, *region);
  }
  co_return written;
}

sim::Task<Expected<void>> CachedLustreClient::truncate(std::string path,
                                                       std::uint64_t size) {
  // Conservative: drop everything we published for the file, then delegate.
  co_await purge_published(path);
  co_return co_await inner_.truncate(std::move(path), size);
}

sim::Task<Expected<void>> CachedLustreClient::rename(std::string from,
                                                     std::string to) {
  co_await purge_published(from);
  co_await purge_published(to);
  state_.erase(from);
  state_.erase(to);
  auto r = co_await inner_.rename(from, to);
  if (r) {
    for (auto& [fd, p] : fd_table_) {
      if (p == from) p = to;
    }
  }
  co_return r;
}

sim::Task<Expected<void>> CachedLustreClient::unlink(std::string path) {
  co_await purge_published(path);
  state_.erase(path);
  co_return co_await inner_.unlink(std::move(path));
}

}  // namespace imca::lustre
