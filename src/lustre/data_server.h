// Lustre-like data server (OST/DS): stores stripe objects and serves
// read/write extents.
//
// Each DS owns its local object store (the stripes mapped to it), a page
// cache and a RAID-backed disk. The paper runs Lustre with 1 or 4 DSs
// ("1DS"/"4DS"); aggregate bandwidth scales with DS count exactly because
// each brings its own NIC and spindles.
#pragma once

#include <cstdint>
#include <string>

#include "net/rpc.h"
#include "store/block_device.h"
#include "store/object_store.h"

namespace imca::lustre {

struct DsParams {
  SimDuration op_cpu = 8 * kMicro;  // kernel service path (no FUSE)
  std::uint64_t copy_bps = 2 * kGiB;
  std::size_t raid_members = 8;  // comparable storage to the GlusterFS brick
  store::DiskParams disk = {};
  std::uint64_t page_cache_bytes = 6 * kGiB;
};

class DataServer {
 public:
  DataServer(net::RpcSystem& rpc, net::NodeId node, DsParams params = {});

  net::NodeId node() const noexcept { return node_; }
  store::ObjectStore& objects() noexcept { return objects_; }
  store::BlockDevice& device() noexcept { return dev_; }

  // Serve a read/write of a local extent (object auto-created on first
  // write, like OST objects).
  sim::Task<Expected<Buffer>> read(std::string object,
                                   std::uint64_t offset, std::uint64_t len);
  sim::Task<Expected<std::uint64_t>> write(std::string object,
                                           std::uint64_t offset, Buffer data);
  sim::Task<Expected<void>> remove(std::string object);
  sim::Task<Expected<void>> truncate_object(std::string object,
                                            std::uint64_t local_size);
  sim::Task<Expected<void>> rename_object(std::string from,
                                          std::string to);

 private:
  net::RpcSystem& rpc_;
  net::NodeId node_;
  DsParams params_;
  store::ObjectStore objects_;
  store::BlockDevice dev_;
};

}  // namespace imca::lustre
