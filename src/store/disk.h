// Rotating-disk service time model and a RAID-0 array of such disks.
//
// The paper's GlusterFS server stores all files on "a RAID array of
// 8 HighPoint disks"; every effect the cache bank exploits comes from the
// gap between this array's behaviour and DRAM:
//   * random access pays seek + rotational latency (milliseconds),
//   * sequential streaming is fast per disk and scales with the array,
//   * one head per disk means deep queues under many clients.
//
// A request's service time is
//   overhead + (random ? avg_seek + half_rotation : 0) + bytes/transfer_rate
// where "random" is detected from the previous request's end offset.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/resource.h"
#include "sim/task.h"

namespace imca::store {

struct DiskParams {
  SimDuration avg_seek = 8 * kMilli;          // average head movement
  SimDuration half_rotation = 4 * kMilli;     // 7200 rpm -> 8.3ms/rev
  std::uint64_t transfer_bps = 100 * kMiB;    // media streaming rate
  SimDuration request_overhead = 50 * kMicro;  // controller + command
};

class DiskModel {
 public:
  DiskModel(sim::EventLoop& loop, DiskParams params, std::string name)
      : params_(params), head_(loop, 1, std::move(name)) {}

  // Book an access without waiting; returns its completion time. `key`
  // identifies the extent (file id + offset) so sequential runs within one
  // stream are detected across interleaved requests from one client.
  SimTime reserve(std::uint64_t key, std::uint64_t offset, std::uint64_t bytes);

  // Queue an access and wait for it to complete.
  [[nodiscard]] auto access(std::uint64_t key, std::uint64_t offset,
                            std::uint64_t bytes) {
    return head_.use(service_time(key, offset, bytes));
  }

  sim::FifoResource& head() noexcept { return head_; }
  const DiskParams& params() const noexcept { return params_; }

  std::uint64_t seeks() const noexcept { return seeks_; }
  std::uint64_t sequential_hits() const noexcept { return sequential_; }

 private:
  SimDuration service_time(std::uint64_t key, std::uint64_t offset,
                           std::uint64_t bytes);

  DiskParams params_;
  sim::FifoResource head_;
  // Per-stream positions (bounded): an access continuing any tracked stream
  // counts as sequential, modelling NCQ + per-file readahead keeping several
  // interleaved sequential streams efficient. Beyond the bound, old streams
  // fall out and their next access seeks — as a real disk would.
  static constexpr std::size_t kMaxStreams = 32;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> streams_;  // key, end
  std::uint64_t seeks_ = 0;
  std::uint64_t sequential_ = 0;
};

// RAID-0: fixed stripe units round-robined across member disks. A request
// spanning several units queues each portion at its member disk; the request
// completes when the slowest portion lands. Streaming bandwidth therefore
// approaches members * per-disk rate, matching the motivation for parallel
// I/O in paper §3.
class RaidArray {
 public:
  RaidArray(sim::EventLoop& loop, std::size_t members, DiskParams params,
            std::uint64_t stripe_unit = 64 * kKiB, std::string name = "raid");

  // Access `bytes` at `offset` of stream `key`; waits for completion.
  sim::Task<void> access(std::uint64_t key, std::uint64_t offset,
                         std::uint64_t bytes);

  // Book the access on the member disks without waiting; returns the
  // completion time of the slowest portion (write-back flush path).
  SimTime reserve(std::uint64_t key, std::uint64_t offset,
                  std::uint64_t bytes);

  std::size_t members() const noexcept { return disks_.size(); }
  std::uint64_t stripe_unit() const noexcept { return stripe_unit_; }
  DiskModel& disk(std::size_t i) { return *disks_.at(i); }

 private:
  sim::EventLoop& loop_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::uint64_t stripe_unit_;
};

}  // namespace imca::store
