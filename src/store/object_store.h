// In-memory backing store holding the *real bytes* of every file.
//
// This is the ground truth the whole reproduction is checked against: data
// written through any path (GlusterFS, IMCa, Lustre, NFS) lands here, data
// read through any path is copied out of here, and the integrity tests
// compare end-to-end reads against direct ObjectStore contents. Time is
// never charged here — the disk/page-cache models own all timing.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/bytebuf.h"
#include "common/errc.h"
#include "common/expected.h"
#include "common/units.h"

namespace imca::store {

// POSIX-stat-like attribute block. This struct is what SMCache serialises
// into memcached under "<path>:stat" (paper §4.2), so it has a stable wire
// encoding.
struct Attr {
  std::uint64_t inode = 0;
  std::uint64_t size = 0;
  std::uint32_t mode = 0644;
  std::uint32_t nlink = 1;
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;

  void encode(ByteBuf& out) const;
  static Expected<Attr> decode(ByteBuf& in);
  // Size of the wire encoding in bytes (what a cached stat item costs):
  // inode + size (u64), mode + nlink (u32), three u64 timestamps.
  static constexpr std::uint64_t kWireSize = 8 * 2 + 4 * 2 + 8 * 3;

  bool operator==(const Attr&) const = default;
};

class ObjectStore {
 public:
  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // Create an empty file. Fails with kExist if the path is taken.
  Expected<Attr> create(std::string_view path, SimTime now,
                        std::uint32_t mode = 0644);

  // Remove a file. Fails with kNoEnt.
  Expected<void> unlink(std::string_view path);

  bool exists(std::string_view path) const;

  Expected<Attr> stat(std::string_view path) const;

  // Write bytes at `offset`, extending the file (holes are zero-filled).
  // Returns the file's new size. Updates mtime/ctime. The store keeps flat
  // per-file bytes, so this materializes `data` once (the "iobuf -> disk"
  // copy in the ledger).
  Expected<std::uint64_t> write(std::string_view path, std::uint64_t offset,
                                const Buffer& data, SimTime now);

  // Read up to `len` bytes from `offset`; short reads at EOF like POSIX.
  // Allocates one fresh segment per call (the "disk -> iobuf" copy); every
  // hop above shares it.
  Expected<Buffer> read(std::string_view path, std::uint64_t offset,
                        std::uint64_t len) const;

  Expected<void> truncate(std::string_view path, std::uint64_t size,
                          SimTime now);

  // POSIX rename: atomically moves `from` to `to`, replacing any existing
  // `to`. The inode is preserved.
  Expected<void> rename(std::string_view from, std::string_view to,
                        SimTime now);

  std::size_t file_count() const noexcept { return files_.size(); }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  // Paths in lexicographic order (deterministic iteration for tests).
  std::vector<std::string> list() const;

 private:
  struct File {
    Attr attr;
    std::vector<std::byte> data;
  };

  std::map<std::string, File, std::less<>> files_;
  std::uint64_t next_inode_ = 1;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace imca::store
