// LRU page cache (presence model of the server's buffer cache).
//
// Real bytes live in the ObjectStore; this structure only tracks which
// 4 KiB pages of which file are resident in server memory, so higher layers
// can decide whether an access costs DRAM or disk. This is the component
// behind Fig 1's bandwidth cliff (working set larger than server memory) and
// behind the difference between warm and cold runs everywhere else.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.h"

namespace imca::store {

class PageCache {
 public:
  static constexpr std::uint64_t kPageSize = 4 * kKiB;

  explicit PageCache(std::uint64_t capacity_bytes)
      : capacity_pages_(capacity_bytes / kPageSize) {}

  // Touch the pages covering [offset, offset+len) of `file`. Returns the
  // number of bytes that were NOT resident (to be charged to the disk).
  // All touched pages become resident (read promotes into cache).
  std::uint64_t access(std::uint64_t file, std::uint64_t offset,
                       std::uint64_t len);

  // Are all pages covering the range resident? (No promotion.)
  bool covered(std::uint64_t file, std::uint64_t offset,
               std::uint64_t len) const;

  // Insert pages without a miss count (write path populates the cache).
  void populate(std::uint64_t file, std::uint64_t offset, std::uint64_t len);

  // Drop every page of `file` (unmount / O_DIRECT / cache purge).
  void invalidate(std::uint64_t file);

  // Drop everything (client unmount in the Lustre cold-cache runs).
  void clear();

  std::uint64_t resident_pages() const noexcept { return map_.size(); }
  std::uint64_t capacity_pages() const noexcept { return capacity_pages_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Key {
    std::uint64_t file;
    std::uint64_t page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // Mix so that page 0 of many files doesn't collide into one bucket.
      return static_cast<std::size_t>(k.file * 0x9E3779B97F4A7C15ull ^ k.page);
    }
  };

  // Touch one page; returns true on hit.
  bool touch(Key k, bool count);
  void insert(Key k);

  std::uint64_t capacity_pages_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace imca::store
