#include "store/object_store.h"

#include <algorithm>

namespace imca::store {

void Attr::encode(ByteBuf& out) const {
  out.put_u64(inode);
  out.put_u64(size);
  out.put_u32(mode);
  out.put_u32(nlink);
  out.put_u64(atime);
  out.put_u64(mtime);
  out.put_u64(ctime);
}

Expected<Attr> Attr::decode(ByteBuf& in) {
  Attr a;
  auto inode = in.get_u64();
  if (!inode) return inode.error();
  a.inode = *inode;
  auto size = in.get_u64();
  if (!size) return size.error();
  a.size = *size;
  auto mode = in.get_u32();
  if (!mode) return mode.error();
  a.mode = *mode;
  auto nlink = in.get_u32();
  if (!nlink) return nlink.error();
  a.nlink = *nlink;
  auto atime = in.get_u64();
  if (!atime) return atime.error();
  a.atime = *atime;
  auto mtime = in.get_u64();
  if (!mtime) return mtime.error();
  a.mtime = *mtime;
  auto ctime = in.get_u64();
  if (!ctime) return ctime.error();
  a.ctime = *ctime;
  return a;
}

Expected<Attr> ObjectStore::create(std::string_view path, SimTime now,
                                   std::uint32_t mode) {
  auto [it, inserted] = files_.try_emplace(std::string(path));
  if (!inserted) return Errc::kExist;
  File& f = it->second;
  f.attr.inode = next_inode_++;
  f.attr.mode = mode;
  f.attr.atime = f.attr.mtime = f.attr.ctime = now;
  return f.attr;
}

Expected<void> ObjectStore::unlink(std::string_view path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Errc::kNoEnt;
  total_bytes_ -= it->second.data.size();
  files_.erase(it);
  return {};
}

bool ObjectStore::exists(std::string_view path) const {
  return files_.contains(path);
}

Expected<Attr> ObjectStore::stat(std::string_view path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Errc::kNoEnt;
  return it->second.attr;
}

Expected<std::uint64_t> ObjectStore::write(std::string_view path,
                                           std::uint64_t offset,
                                           const Buffer& data, SimTime now) {
  auto it = files_.find(path);
  if (it == files_.end()) return Errc::kNoEnt;
  File& f = it->second;
  const std::uint64_t end = offset + data.size();
  if (end > f.data.size()) {
    total_bytes_ += end - f.data.size();
    f.data.resize(end);  // zero-fills holes
  }
  data.copy_to(0, std::span<std::byte>(f.data).subspan(offset, data.size()));
  f.attr.size = f.data.size();
  f.attr.mtime = f.attr.ctime = now;
  return f.attr.size;
}

Expected<Buffer> ObjectStore::read(std::string_view path,
                                   std::uint64_t offset,
                                   std::uint64_t len) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Errc::kNoEnt;
  const File& f = it->second;
  if (offset >= f.data.size()) return Buffer{};
  const std::uint64_t n = std::min(len, f.data.size() - offset);
  return Buffer::copy_of(std::span<const std::byte>(f.data).subspan(offset, n));
}

Expected<void> ObjectStore::truncate(std::string_view path, std::uint64_t size,
                                     SimTime now) {
  auto it = files_.find(path);
  if (it == files_.end()) return Errc::kNoEnt;
  File& f = it->second;
  if (size >= f.data.size()) {
    total_bytes_ += size - f.data.size();
  } else {
    total_bytes_ -= f.data.size() - size;
  }
  f.data.resize(size);
  f.attr.size = size;
  f.attr.mtime = f.attr.ctime = now;
  return {};
}

Expected<void> ObjectStore::rename(std::string_view from, std::string_view to,
                                   SimTime now) {
  auto src = files_.find(from);
  if (src == files_.end()) return Errc::kNoEnt;
  if (from == to) return {};
  // Replace any existing target (POSIX semantics).
  if (auto dst = files_.find(to); dst != files_.end()) {
    total_bytes_ -= dst->second.data.size();
    files_.erase(dst);
  }
  File moved = std::move(src->second);
  files_.erase(src);
  moved.attr.ctime = now;
  files_.emplace(std::string(to), std::move(moved));
  return {};
}

std::vector<std::string> ObjectStore::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

}  // namespace imca::store
