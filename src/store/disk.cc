#include "store/disk.h"

#include <algorithm>

namespace imca::store {

SimDuration DiskModel::service_time(std::uint64_t key, std::uint64_t offset,
                                    std::uint64_t bytes) {
  // Continue a tracked stream? (Move it to the front: recently-active
  // streams stay tracked.)
  bool sequential = false;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].first == key) {
      sequential = streams_[i].second == offset;
      streams_.erase(streams_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  streams_.insert(streams_.begin(), {key, offset + bytes});
  if (streams_.size() > kMaxStreams) streams_.pop_back();

  SimDuration t = params_.request_overhead +
                  transfer_time(bytes, params_.transfer_bps);
  if (sequential) {
    ++sequential_;
  } else {
    ++seeks_;
    t += params_.avg_seek + params_.half_rotation;
  }
  return t;
}

SimTime DiskModel::reserve(std::uint64_t key, std::uint64_t offset,
                           std::uint64_t bytes) {
  return head_.reserve(service_time(key, offset, bytes));
}

RaidArray::RaidArray(sim::EventLoop& loop, std::size_t members,
                     DiskParams params, std::uint64_t stripe_unit,
                     std::string name)
    : loop_(loop), stripe_unit_(stripe_unit) {
  disks_.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    disks_.push_back(std::make_unique<DiskModel>(
        loop, params, name + ".d" + std::to_string(i)));
  }
}

SimTime RaidArray::reserve(std::uint64_t key, std::uint64_t offset,
                           std::uint64_t bytes) {
  const std::size_t members = disks_.size();
  if (bytes == 0) {
    // Metadata-only touch: charge one member the zero-length access (it
    // still pays overhead + seek when non-sequential).
    DiskModel& d = *disks_[offset / stripe_unit_ % members];
    return d.reserve(key, offset, 0);
  }

  // Book each stripe portion on its member disk at the disk's *physical*
  // offset (logical units 0, M, 2M… of member 0 are contiguous on its
  // platter), so a logically sequential stream is sequential per disk.
  SimTime done = 0;
  std::uint64_t pos = offset;
  std::uint64_t left = bytes;
  while (left > 0) {
    const std::uint64_t unit = pos / stripe_unit_;
    const std::uint64_t within = pos % stripe_unit_;
    const std::uint64_t chunk = std::min(left, stripe_unit_ - within);
    DiskModel& d = *disks_[unit % members];
    const std::uint64_t phys = (unit / members) * stripe_unit_ + within;
    done = std::max(done, d.reserve(key, phys, chunk));
    pos += chunk;
    left -= chunk;
  }
  return done;
}

sim::Task<void> RaidArray::access(std::uint64_t key, std::uint64_t offset,
                                  std::uint64_t bytes) {
  co_await loop_.sleep_until(reserve(key, offset, bytes));
}

}  // namespace imca::store
