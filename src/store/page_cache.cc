#include "store/page_cache.h"

namespace imca::store {

bool PageCache::touch(Key k, bool count) {
  auto it = map_.find(k);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    if (count) ++hits_;
    return true;
  }
  if (count) ++misses_;
  return false;
}

void PageCache::insert(Key k) {
  if (capacity_pages_ == 0) return;
  if (map_.contains(k)) return;
  while (map_.size() >= capacity_pages_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(k);
  map_[k] = lru_.begin();
}

std::uint64_t PageCache::access(std::uint64_t file, std::uint64_t offset,
                                std::uint64_t len) {
  if (len == 0) return 0;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::uint64_t missed_pages = 0;
  for (std::uint64_t p = first; p <= last; ++p) {
    const Key k{file, p};
    if (!touch(k, /*count=*/true)) {
      ++missed_pages;
      insert(k);
    }
  }
  return missed_pages * kPageSize;
}

bool PageCache::covered(std::uint64_t file, std::uint64_t offset,
                        std::uint64_t len) const {
  if (len == 0) return true;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (!map_.contains(Key{file, p})) return false;
  }
  return true;
}

void PageCache::populate(std::uint64_t file, std::uint64_t offset,
                         std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    Key k{file, p};
    if (!touch(k, /*count=*/false)) insert(k);
  }
}

void PageCache::invalidate(std::uint64_t file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->file == file) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace imca::store
