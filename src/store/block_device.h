// BlockDevice: the timing facade a file server mounts its backing store
// through.
//
// It combines a RAID array (time for media access) with a page cache
// (which accesses are free). Data reads promote pages; data writes are
// write-back: they populate the cache immediately and book an asynchronous
// flush on the array (the flush occupies disk time in the background and
// delays later cache-miss reads, like pdflush on the real server).
//
// Metadata (inode) accesses use a synthetic per-file page so that stat-heavy
// workloads on huge file sets pressure the cache realistically.
#pragma once

#include <cstdint>

#include "store/disk.h"
#include "store/page_cache.h"

namespace imca::store {

class BlockDevice {
 public:
  BlockDevice(sim::EventLoop& loop, std::size_t raid_members,
              DiskParams disk_params, std::uint64_t cache_bytes,
              std::string name = "blkdev")
      : loop_(loop),
        raid_(loop, raid_members, disk_params, 64 * kKiB, std::move(name)),
        cache_(cache_bytes) {}

  // Charge a data read of [offset, offset+len) of file `inode`. Resident
  // pages are free; missing bytes go to the array.
  sim::Task<void> read(std::uint64_t inode, std::uint64_t offset,
                       std::uint64_t len);

  // Charge a data write: populate the cache, book the flush asynchronously.
  sim::Task<void> write(std::uint64_t inode, std::uint64_t offset,
                        std::uint64_t len);

  // Charge a metadata (inode block) access for `inode`.
  sim::Task<void> meta(std::uint64_t inode);

  // Drop cached pages of a file (unlink) or everything (remount).
  void invalidate(std::uint64_t inode) { cache_.invalidate(inode); }
  void drop_caches() { cache_.clear(); }

  PageCache& cache() noexcept { return cache_; }
  RaidArray& raid() noexcept { return raid_; }

 private:
  // Inode table lives at a distinct "file" id so metadata pages compete with
  // data pages for cache space, as they do in a real buffer cache.
  static constexpr std::uint64_t kMetaFile = ~0ull;

  sim::EventLoop& loop_;
  RaidArray raid_;
  PageCache cache_;
};

}  // namespace imca::store
