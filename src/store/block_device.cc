#include "store/block_device.h"

namespace imca::store {

sim::Task<void> BlockDevice::read(std::uint64_t inode, std::uint64_t offset,
                                  std::uint64_t len) {
  const std::uint64_t missed = cache_.access(inode, offset, len);
  if (missed > 0) {
    co_await raid_.access(inode, offset, missed);
  }
}

sim::Task<void> BlockDevice::write(std::uint64_t inode, std::uint64_t offset,
                                   std::uint64_t len) {
  cache_.populate(inode, offset, len);
  // Write-back: the flush is booked on the member disks but not awaited, so
  // the caller sees buffer-cache write latency while the array stays busy in
  // the background.
  if (len > 0) {
    (void)raid_.reserve(inode, offset, len);
  }
  co_return;
}

sim::Task<void> BlockDevice::meta(std::uint64_t inode) {
  // One inode record = one synthetic page at a per-inode offset.
  const std::uint64_t off = inode * PageCache::kPageSize;
  const std::uint64_t missed =
      cache_.access(kMetaFile, off, PageCache::kPageSize);
  if (missed > 0) {
    co_await raid_.access(kMetaFile, off, missed);
  }
}

}  // namespace imca::store
