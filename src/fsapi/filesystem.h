// The POSIX-ish client interface every file system in this repository
// implements: GlusterFS (with or without the IMCa translators), the
// Lustre-like comparator and the NFS-like motivation server.
//
// Benchmarks and examples are written against this interface, so the same
// workload code drives every system in every figure — the comparison
// methodology the paper uses (same IOzone/latency/stat benchmarks against
// GlusterFS, GlusterFS+IMCa and Lustre).
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/expected.h"
#include "sim/task.h"
#include "store/object_store.h"

namespace imca::fsapi {

// An open-file handle. Plain value type; the owning client interprets it.
struct OpenFile {
  std::uint64_t fd = 0;
};

class FileSystemClient {
 public:
  virtual ~FileSystemClient() = default;

  // Create a new file and open it. kExist if the path is taken.
  virtual sim::Task<Expected<OpenFile>> create(std::string path) = 0;

  // Open an existing file. kNoEnt if absent.
  virtual sim::Task<Expected<OpenFile>> open(std::string path) = 0;

  // Release the handle. kBadF on an unknown handle.
  virtual sim::Task<Expected<void>> close(OpenFile file) = 0;

  // POSIX stat by path.
  virtual sim::Task<Expected<store::Attr>> stat(std::string path) = 0;

  // Read up to `len` bytes at `offset`; short at EOF. The result is a
  // segment chain shared with the layer that produced the bytes; callers
  // materialize with gather()/copy_to() only at the true consumption edge.
  virtual sim::Task<Expected<Buffer>> read(OpenFile file, std::uint64_t offset,
                                           std::uint64_t len) = 0;

  // Write `data` at `offset`; returns bytes written (always all of them).
  virtual sim::Task<Expected<std::uint64_t>> write(OpenFile file,
                                                   std::uint64_t offset,
                                                   Buffer data) = 0;

  // Remove by path.
  virtual sim::Task<Expected<void>> unlink(std::string path) = 0;

  // Set the file size (grow zero-fills, shrink discards).
  virtual sim::Task<Expected<void>> truncate(std::string path,
                                             std::uint64_t size) = 0;

  // Atomically move `from` to `to`, replacing any existing `to`. Open
  // handles follow the file to its new name.
  virtual sim::Task<Expected<void>> rename(std::string from,
                                           std::string to) = 0;

  // Durability barrier: acked writes on `file` are on stable storage when
  // this returns. Default is a no-op — meaningful only for clients with a
  // volatile write path (GlusterFS write-behind, IMCa write-back).
  virtual sim::Task<Expected<void>> fsync(OpenFile file) {
    (void)file;
    co_return Expected<void>{};
  }
};

}  // namespace imca::fsapi
