// A simulated cluster node: CPU cores plus a full-duplex NIC.
//
// Contention at a node is what shapes every scaling curve in the paper:
// 64 clients hammering one GlusterFS server queue at that server's rx NIC
// and CPU; adding MCD nodes adds independent NICs, which is exactly why the
// cache bank scales (paper §5.2, §5.5).
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_loop.h"
#include "sim/resource.h"

namespace imca::net {

using NodeId = std::uint32_t;

class Node {
 public:
  Node(sim::EventLoop& loop, NodeId id, std::string name, std::size_t cores)
      : id_(id),
        name_(std::move(name)),
        cpu_(loop, cores, name_ + ".cpu"),
        nic_tx_(loop, 1, name_ + ".tx"),
        nic_rx_(loop, 1, name_ + ".rx") {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  sim::FifoResource& cpu() noexcept { return cpu_; }
  sim::FifoResource& nic_tx() noexcept { return nic_tx_; }
  sim::FifoResource& nic_rx() noexcept { return nic_rx_; }

 private:
  NodeId id_;
  std::string name_;
  sim::FifoResource cpu_;
  sim::FifoResource nic_tx_;
  sim::FifoResource nic_rx_;
};

}  // namespace imca::net
