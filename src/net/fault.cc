#include "net/fault.h"

namespace imca::net {

FaultDecision FaultInjector::decide(NodeId node, std::uint16_t port) {
  FaultDecision d;
  const auto it = specs_.find({node, port});
  if (it == specs_.end()) return d;
  const FaultSpec& spec = it->second;

  // One uniform draw per probability, in a fixed order, so a run is
  // reproducible bit-for-bit from the seed regardless of which faults fire.
  if (rng_.chance(spec.drop_request)) {
    d.kind = FaultKind::kDropRequest;
    d.give_up = spec.give_up;
    ++stats_.drops_request;
    return d;
  }
  if (rng_.chance(spec.drop_reply)) {
    d.kind = FaultKind::kDropReply;
    d.give_up = spec.give_up;
    ++stats_.drops_reply;
    return d;
  }
  if (rng_.chance(spec.slow_reply)) {
    d.kind = FaultKind::kSlowReply;
    d.slow_delay = spec.slow_delay;
    ++stats_.slow_replies;
    return d;
  }
  if (rng_.chance(spec.short_read)) {
    d.kind = FaultKind::kShortRead;
    d.cut_draw = rng_.next();
    ++stats_.short_reads;
    return d;
  }
  ++stats_.clean_calls;
  return d;
}

}  // namespace imca::net
