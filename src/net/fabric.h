// The simulated interconnect: a set of nodes joined by a non-blocking switch
// (star topology, which matches a single-switch InfiniBand cluster).
//
// A message transfer charges, in order:
//   sender CPU (per-message stack cost)     — sender's core pool
//   sender NIC serialization (size / bw)    — sender's tx queue
//   wire latency                            — pure delay, no contention
//   receiver NIC serialization              — receiver's rx queue
//   receiver CPU (per-message stack cost)   — receiver's core pool
//
// The switch itself is non-blocking (full bisection bandwidth), so the only
// shared queues are the per-node NICs and CPUs — the right model for a
// single-stage fat switch and the source of the paper's single-server
// bottleneck.
#pragma once

#include <memory>
#include <vector>

#include "net/node.h"
#include "net/transport.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace imca::net {

class Fabric {
 public:
  Fabric(sim::EventLoop& loop, TransportParams transport)
      : loop_(loop), transport_(std::move(transport)) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Create a node attached to the fabric. `cores` is the CPU core count
  // (the paper's nodes are 8-core Clovertowns).
  Node& add_node(std::string name, std::size_t cores = 8);

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  sim::EventLoop& loop() noexcept { return loop_; }
  const TransportParams& transport() const noexcept { return transport_; }

  // Move one message of `payload` bytes from `src` to `dst`. Completes when
  // the last byte has landed and been processed by the receiving stack.
  // Loopback (src == dst) charges only a small in-memory copy cost.
  sim::Task<void> transfer(NodeId src, NodeId dst, std::uint64_t payload);

  // Same, but under explicit transport parameters — e.g. a verbs/RDMA
  // channel between specific endpoints while the rest of the cluster speaks
  // IPoIB (the paper's future-work direction of RDMA-ing the cache bank).
  sim::Task<void> transfer_via(TransportParams transport, NodeId src,
                               NodeId dst, std::uint64_t payload);

  // --- instrumentation ---
  std::uint64_t messages_sent() const noexcept { return messages_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }

 private:
  sim::EventLoop& loop_;
  TransportParams transport_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace imca::net
