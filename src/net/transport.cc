#include "net/transport.h"

namespace imca::net {

TransportParams ib_rdma() {
  return TransportParams{
      .name = "IB-RDMA",
      .wire_latency = 3 * kMicro,
      .bandwidth_bps = 1400 * kMiB,
      .send_cpu_per_msg = 2 * kMicro,
      .recv_cpu_per_msg = 2 * kMicro,
      .header_bytes = 32,
  };
}

TransportParams ipoib_rc() {
  return TransportParams{
      .name = "IPoIB-RC",
      .wire_latency = 8 * kMicro,
      .bandwidth_bps = 950 * kMiB,
      .send_cpu_per_msg = 8 * kMicro,
      .recv_cpu_per_msg = 8 * kMicro,
      .header_bytes = 78,
  };
}

TransportParams gige() {
  return TransportParams{
      .name = "GigE",
      .wire_latency = 25 * kMicro,
      .bandwidth_bps = 117 * kMiB,
      .send_cpu_per_msg = 15 * kMicro,
      .recv_cpu_per_msg = 15 * kMicro,
      .header_bytes = 78,
  };
}

}  // namespace imca::net
