// Transport parameter sets for the simulated fabric.
//
// The paper's testbed talks over IP-over-InfiniBand (Reliable Connection) on
// DDR HCAs; the motivation experiment (Fig 1) also compares NFS over native
// IB RDMA and over gigabit ethernet. In the model a transport is fully
// described by four constants:
//
//   * one-way wire latency,
//   * link bandwidth (serialization rate at each NIC),
//   * per-message CPU time at the sender, and
//   * per-message CPU time at the receiver.
//
// RDMA's advantage appears as tiny per-message CPU cost (the HCA does the
// work); IPoIB pays the TCP/IP stack on both ends but keeps IB bandwidth;
// GigE pays the stack *and* has two orders of magnitude less bandwidth.
// Values are representative of 2008-era measurements on comparable hardware
// and are recorded in DESIGN.md §7.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace imca::net {

struct TransportParams {
  std::string name;
  SimDuration wire_latency;        // one-way propagation + switching
  std::uint64_t bandwidth_bps;     // bytes per second on each link
  SimDuration send_cpu_per_msg;    // host CPU to push one message
  SimDuration recv_cpu_per_msg;    // host CPU to land one message
  std::uint64_t header_bytes;      // framing added to every message

  // End-to-end time for one message of `payload` bytes on an uncontended
  // path (CPU + serialization + wire + deserialization + CPU).
  SimDuration uncontended_time(std::uint64_t payload) const {
    const std::uint64_t wire = payload + header_bytes;
    return send_cpu_per_msg + transfer_time(wire, bandwidth_bps) +
           wire_latency + transfer_time(wire, bandwidth_bps) +
           recv_cpu_per_msg;
  }
};

// InfiniBand DDR, native verbs/RDMA path (NFS/RDMA in Fig 1).
TransportParams ib_rdma();

// IP-over-InfiniBand with Reliable Connection — the transport used between
// all IMCa components and between GlusterFS client and server (paper §5.1).
TransportParams ipoib_rc();

// Gigabit ethernet with TCP (Fig 1 baseline).
TransportParams gige();

}  // namespace imca::net
