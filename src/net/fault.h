// Deterministic fault injection for the simulated fabric (DESIGN.md §5d).
//
// A FaultInjector sits beside the RpcSystem and, for every call to a
// (node, port) it has a FaultSpec for, draws one fault decision from a
// seeded PRNG. The RpcSystem applies the decision:
//
//   * drop-request — the request crosses the wire and is lost before the
//     daemon parses it (no side effect on the peer); the caller's transport
//     only gives up after `give_up`, surfacing kTimedOut. Nothing ever hangs
//     forever: every black-holed call resolves in bounded simulated time.
//   * drop-reply  — the daemon executes the request (side effects applied!)
//     but the reply is lost; the caller times out as above. This is the
//     "did my delete land?" ambiguity the client retry machinery must absorb.
//   * slow-reply  — the reply alone is delayed by `slow_delay`. Requests are
//     deliberately never delayed: a mutation either reaches the daemon
//     promptly or never, which keeps the writer's purge/publish ordering
//     argument (DESIGN.md §5d) free of in-flight-request races.
//   * short-read  — the reply is truncated to a strict prefix; the client's
//     protocol parser sees a torn response (kProto).
//
// Crash/restart faults are not drawn per call: they are scheduled windows on
// the simulated clock (`McServer::schedule_crash`), bundled with the
// probabilistic spec in a FaultPlan. A killed daemon stops listening and
// discards its contents, so callers observe a clean kConnRefused.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace imca::net {

using NodeId = std::uint32_t;  // matches net/node.h

enum class FaultKind : std::uint8_t {
  kNone,
  kDropRequest,
  kDropReply,
  kSlowReply,
  kShortRead,
};

// Per-target probabilities for one RPC. At most one fault fires per call,
// checked in declaration order.
struct FaultSpec {
  double drop_request = 0.0;
  double drop_reply = 0.0;
  double slow_reply = 0.0;
  double short_read = 0.0;
  // Reply delay for slow-reply faults.
  SimDuration slow_delay = 2 * kMilli;
  // How long a black-holed call lingers before the caller's transport gives
  // up with kTimedOut. Deliberately much larger than any sane per-op client
  // deadline, so a client with timeouts sees its own deadline fire first and
  // a client without them still terminates.
  SimDuration give_up = 200 * kMilli;

  bool any() const noexcept {
    return drop_request > 0 || drop_reply > 0 || slow_reply > 0 ||
           short_read > 0;
  }
};

// One drawn decision, applied by RpcSystem::call.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  SimDuration slow_delay = 0;
  SimDuration give_up = 0;
  // Raw draw for the truncation point; the applier takes it modulo the
  // response size (the size is unknown at draw time).
  std::uint64_t cut_draw = 0;
};

// A deterministic kill (and optional restart) of one cache daemon,
// identified by its index in the deployment's MCD list.
struct CrashEvent {
  std::size_t mcd = 0;
  SimTime at = 0;
  std::optional<SimTime> restart_at;
};

// A deterministic kill (and optional restart) of the GlusterFS brick
// itself (DESIGN.md §5f). A crashed brick stops listening and drops its
// volatile state (page cache, write-behind buffers); the ObjectStore — the
// disk — survives and is what a restart comes back up with.
struct ServerCrashEvent {
  SimTime at = 0;
  std::optional<SimTime> restart_at;
  // Which brick dies, as an index into the deployment's brick grid
  // (row-major: group g, replica r at g*replicas + r). 0 — the only brick —
  // for classic single-server deployments.
  std::size_t brick = 0;
};

// Everything a deployment needs to run under faults: the seed for the
// per-call draws, probabilistic wire specs (one applied to every MCD, one
// to the brick's GlusterFS port), and the scheduled crash windows on both
// tiers.
struct FaultPlan {
  std::uint64_t seed = 1;
  FaultSpec spec;                 // MCD array wire faults
  std::vector<CrashEvent> crashes;
  // File-server tier (DESIGN.md §5f): wire faults on port 24007 — the
  // slow-server / lossy-server drills — plus brick crash windows.
  FaultSpec server_spec;
  std::vector<ServerCrashEvent> server_crashes;

  bool active() const noexcept {
    return spec.any() || !crashes.empty() || server_spec.any() ||
           !server_crashes.empty();
  }
};

class FaultInjector {
 public:
  struct Stats {
    std::uint64_t drops_request = 0;
    std::uint64_t drops_reply = 0;
    std::uint64_t slow_replies = 0;
    std::uint64_t short_reads = 0;
    std::uint64_t clean_calls = 0;  // calls a spec covered but left alone
  };

  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_spec(NodeId node, std::uint16_t port, FaultSpec spec) {
    specs_[{node, port}] = spec;
  }
  void clear_spec(NodeId node, std::uint16_t port) {
    specs_.erase({node, port});
  }

  // Draw the fault decision for one call. Consumes PRNG state only when a
  // spec covers the target, so adding an uncovered service to a deployment
  // does not perturb the fault sequence.
  FaultDecision decide(NodeId node, std::uint16_t port);

  const Stats& stats() const noexcept { return stats_; }

 private:
  Rng rng_;
  std::map<std::pair<NodeId, std::uint16_t>, FaultSpec> specs_;
  Stats stats_;
};

}  // namespace imca::net
