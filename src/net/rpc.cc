#include "net/rpc.h"

namespace imca::net {

void RpcSystem::listen(NodeId node, Port port, Handler handler) {
  handlers_[{node, port}] = std::move(handler);
}

void RpcSystem::shutdown(NodeId node, Port port) {
  handlers_.erase({node, port});
}

sim::Task<Expected<ByteBuf>> RpcSystem::call(NodeId src, NodeId dst, Port port,
                                             ByteBuf request,
                                             const TransportParams* transport) {
  ++calls_;
  const TransportParams& t =
      transport != nullptr ? *transport : fabric_.transport();
  const auto it = handlers_.find({dst, port});
  if (it == handlers_.end()) {
    // Connection refused: the SYN still crosses the wire and the RST comes
    // back, so the caller pays one round trip before learning the peer died.
    co_await fabric_.loop().sleep(2 * t.wire_latency);
    co_return Errc::kConnRefused;
  }

  co_await fabric_.transfer_via(t, src, dst, request.size());

  // The handler may unregister itself while running (daemon killed mid-
  // request); take a copy of the callable so the call completes first.
  Handler handler = it->second;
  ByteBuf response = co_await handler(std::move(request), src);

  if (!listening(dst, port)) {
    // Daemon died before the response hit the wire.
    co_return Errc::kConnReset;
  }

  co_await fabric_.transfer_via(t, dst, src, response.size());
  co_return response;
}

}  // namespace imca::net
