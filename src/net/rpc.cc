#include "net/rpc.h"

namespace imca::net {

void RpcSystem::listen(NodeId node, Port port, Handler handler) {
  handlers_[{node, port}] = std::move(handler);
}

void RpcSystem::shutdown(NodeId node, Port port) {
  handlers_.erase({node, port});
}

sim::Task<Expected<ByteBuf>> RpcSystem::call(NodeId src, NodeId dst, Port port,
                                             ByteBuf request,
                                             const TransportParams* transport) {
  ++calls_;
  ++calls_by_target_[{dst, port}];
  const TransportParams& t =
      transport != nullptr ? *transport : fabric_.transport();

  const FaultDecision fault = injector_ != nullptr
                                  ? injector_->decide(dst, port)
                                  : FaultDecision{};

  const auto it = handlers_.find({dst, port});
  if (it == handlers_.end()) {
    // Connection refused: the SYN still crosses the wire and the RST comes
    // back, so the caller pays one round trip before learning the peer died.
    co_await fabric_.loop().sleep(2 * t.wire_latency);
    co_return Errc::kConnRefused;
  }

  // The daemon can shut down while the request is on the wire or while the
  // handler runs (killed mid-request), erasing its map node under any of
  // the awaits below — copy the callable before the first suspension.
  Handler handler = it->second;

  co_await fabric_.transfer_via(t, src, dst, request.size());

  if (fault.kind == FaultKind::kDropRequest) {
    // The request vanished before the daemon parsed it: no side effect on
    // the peer, and the caller only gives up after the transport deadline.
    co_await fabric_.loop().sleep(fault.give_up);
    co_return Errc::kTimedOut;
  }

  if (!listening(dst, port)) {
    // The daemon died while the request crossed the wire: it lands on a
    // closed port and the RST comes back. Nothing was applied.
    co_return Errc::kConnReset;
  }

  ByteBuf response = co_await handler(std::move(request), src);

  if (!listening(dst, port)) {
    // Daemon died before the response hit the wire.
    co_return Errc::kConnReset;
  }

  if (fault.kind == FaultKind::kDropReply) {
    // Side effects applied on the daemon, reply lost on the way back.
    co_await fabric_.loop().sleep(fault.give_up);
    co_return Errc::kTimedOut;
  }

  if (fault.kind == FaultKind::kSlowReply) {
    co_await fabric_.loop().sleep(fault.slow_delay);
  }

  if (fault.kind == FaultKind::kShortRead && response.size() > 0) {
    // Truncate to a strict prefix; the protocol parser reports kProto.
    const std::size_t cut =
        static_cast<std::size_t>(fault.cut_draw % response.size());
    response = ByteBuf(response.buffer().slice(0, cut));
  }

  co_await fabric_.transfer_via(t, dst, src, response.size());
  co_return response;
}

}  // namespace imca::net
