// Request/response RPC over the simulated fabric.
//
// Services (the GlusterFS server process, each memcached daemon, the Lustre
// MDS/OSS, the NFS server) register a handler on a (node, port) pair. A call
// ships the encoded request across the fabric, runs the handler *on the
// server* (any resource the handler touches — CPU, disk — queues there), and
// ships the encoded response back. Response size on the wire is the size of
// the actual encoding, so big reads cost real serialization time.
//
// Failure model: calling a port nobody listens on costs one wire round trip
// and returns kConnRefused — this is what the libmemcache client sees when a
// cache daemon has been killed (paper §4.4: "IMCa can transparently account
// for failures in MCDs").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/bytebuf.h"
#include "common/expected.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "net/transport.h"
#include "sim/task.h"

namespace imca::net {

using Port = std::uint16_t;

// Well-known ports, matching the real systems where one exists.
inline constexpr Port kPortGluster = 24007;    // GlusterFS brick
inline constexpr Port kPortMemcached = 11211;  // memcached daemon
inline constexpr Port kPortLustreMds = 988;    // Lustre metadata service
inline constexpr Port kPortLustreOss = 989;    // Lustre object storage
inline constexpr Port kPortNfs = 2049;         // NFS server

class RpcSystem {
 public:
  using Handler =
      std::function<sim::Task<ByteBuf>(ByteBuf request, NodeId from)>;

  explicit RpcSystem(Fabric& fabric) : fabric_(fabric) {}
  RpcSystem(const RpcSystem&) = delete;
  RpcSystem& operator=(const RpcSystem&) = delete;

  // Register `handler` as the listener on (node, port). Replaces any
  // previous listener (used by restart scenarios).
  void listen(NodeId node, Port port, Handler handler);

  // Remove the listener — subsequent calls get kConnRefused. Models killing
  // a daemon for the failure-injection experiments.
  void shutdown(NodeId node, Port port);

  bool listening(NodeId node, Port port) const {
    return handlers_.contains({node, port});
  }

  // Issue a call from `src` to the service at (dst, port). `transport`
  // overrides the fabric's default parameters for this call's two transfers
  // (e.g. a verbs/RDMA channel to a cache daemon).
  sim::Task<Expected<ByteBuf>> call(NodeId src, NodeId dst, Port port,
                                    ByteBuf request,
                                    const TransportParams* transport = nullptr);

  Fabric& fabric() noexcept { return fabric_; }

  std::uint64_t calls_made() const noexcept { return calls_; }

  // Calls issued *to* a given service, faulted or not. Lets failover tests
  // assert an ejected daemon takes zero traffic.
  std::uint64_t calls_to(NodeId node, Port port) const {
    const auto it = calls_by_target_.find({node, port});
    return it == calls_by_target_.end() ? 0 : it->second;
  }

  // Attach (or detach, with nullptr) a fault injector. Not owned; must
  // outlive the RpcSystem or be detached first.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }

 private:
  Fabric& fabric_;
  std::map<std::pair<NodeId, Port>, Handler> handlers_;
  std::uint64_t calls_ = 0;
  std::map<std::pair<NodeId, Port>, std::uint64_t> calls_by_target_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace imca::net
