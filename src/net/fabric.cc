#include "net/fabric.h"

namespace imca::net {

Node& Fabric::add_node(std::string name, std::size_t cores) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(loop_, id, std::move(name), cores));
  return *nodes_.back();
}

sim::Task<void> Fabric::transfer(NodeId src, NodeId dst,
                                 std::uint64_t payload) {
  co_await transfer_via(transport_, src, dst, payload);
}

sim::Task<void> Fabric::transfer_via(TransportParams transport,
                                     NodeId src, NodeId dst,
                                     std::uint64_t payload) {
  ++messages_;
  bytes_ += payload;

  if (src == dst) {
    // Local loopback: no NIC, just a memcpy-scale CPU charge.
    co_await node(src).cpu().use(1 * kMicro);
    co_return;
  }

  const std::uint64_t wire_bytes = payload + transport.header_bytes;
  const SimDuration serialize =
      transfer_time(wire_bytes, transport.bandwidth_bps);

  Node& s = node(src);
  Node& d = node(dst);

  co_await s.cpu().use(transport.send_cpu_per_msg);
  co_await s.nic_tx().use(serialize);
  co_await loop_.sleep(transport.wire_latency);
  co_await d.nic_rx().use(serialize);
  co_await d.cpu().use(transport.recv_cpu_per_msg);
}

}  // namespace imca::net
