#include "nfs/nfs.h"

#include <algorithm>

namespace imca::nfs {

NfsServer::NfsServer(net::RpcSystem& rpc, net::NodeId node,
                     NfsServerParams params)
    : rpc_(rpc),
      node_(node),
      params_(params),
      dev_(rpc.fabric().loop(), params.raid_members, params.disk,
           params.page_cache_bytes, "nfsd" + std::to_string(node)) {}

sim::Task<Expected<store::Attr>> NfsServer::create(std::string path) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  auto attr = files_.create(path, rpc_.fabric().loop().now());
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<store::Attr>> NfsServer::getattr(std::string path) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  auto attr = files_.stat(path);
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<Buffer>> NfsServer::read(std::string path,
                                            std::uint64_t offset,
                                            std::uint64_t len) {
  auto attr = files_.stat(path);
  if (!attr) co_return attr.error();
  co_await rpc_.fabric().node(node_).cpu().use(
      params_.op_cpu + transfer_time(len, params_.copy_bps));
  co_await dev_.read(attr->inode, offset, len);
  auto data = files_.read(path, offset, len);
  if (!data) co_return data.error();
  co_return std::move(*data);
}

sim::Task<Expected<std::uint64_t>> NfsServer::write(std::string path,
                                                    std::uint64_t offset,
                                                    Buffer data) {
  auto attr = files_.stat(path);
  if (!attr) co_return attr.error();
  const std::uint64_t n = data.size();
  co_await rpc_.fabric().node(node_).cpu().use(
      params_.op_cpu + transfer_time(n, params_.copy_bps));
  auto size = files_.write(path, offset, data, rpc_.fabric().loop().now());
  if (!size) co_return size.error();
  co_await dev_.write(attr->inode, offset, n);
  co_return n;
}

sim::Task<Expected<void>> NfsServer::remove(std::string path) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  auto attr = files_.stat(path);
  if (!attr) co_return attr.error();
  dev_.invalidate(attr->inode);
  co_return files_.unlink(path);
}

sim::Task<Expected<void>> NfsServer::setattr_size(std::string path,
                                                  std::uint64_t size) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  auto attr = files_.stat(path);
  if (!attr) co_return attr.error();
  if (size < attr->size) dev_.invalidate(attr->inode);
  co_return files_.truncate(path, size, rpc_.fabric().loop().now());
}

sim::Task<Expected<void>> NfsServer::rename_file(std::string from,
                                                 std::string to) {
  co_await rpc_.fabric().node(node_).cpu().use(params_.op_cpu);
  co_return files_.rename(from, to, rpc_.fabric().loop().now());
}

// --- client ---

NfsClient::NfsClient(net::RpcSystem& rpc, net::NodeId self, NfsServer& server,
                     NfsClientParams params)
    : rpc_(rpc), self_(self), server_(server), params_(params) {}

Expected<std::string> NfsClient::path_of(fsapi::OpenFile file) const {
  auto it = fd_table_.find(file.fd);
  if (it == fd_table_.end()) return Errc::kBadF;
  return it->second;
}

sim::Task<Expected<fsapi::OpenFile>> NfsClient::create(std::string path) {
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  co_await rpc_.fabric().transfer(self_, server_.node(),
                                  params_.rpc_header_bytes + path.size());
  auto attr = co_await server_.create(path);
  co_await rpc_.fabric().transfer(server_.node(), self_,
                                  params_.rpc_header_bytes);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<fsapi::OpenFile>> NfsClient::open(std::string path) {
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  co_await rpc_.fabric().transfer(self_, server_.node(),
                                  params_.rpc_header_bytes + path.size());
  auto attr = co_await server_.getattr(path);
  co_await rpc_.fabric().transfer(server_.node(), self_,
                                  params_.rpc_header_bytes);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<void>> NfsClient::close(fsapi::OpenFile file) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  fd_table_.erase(file.fd);
  co_return Expected<void>{};  // NFS close is local
}

sim::Task<Expected<store::Attr>> NfsClient::stat(std::string path) {
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  co_await rpc_.fabric().transfer(self_, server_.node(),
                                  params_.rpc_header_bytes + path.size());
  auto attr = co_await server_.getattr(path);
  co_await rpc_.fabric().transfer(server_.node(), self_,
                                  params_.rpc_header_bytes);
  co_return attr;
}

sim::Task<Expected<Buffer>> NfsClient::read(fsapi::OpenFile file,
                                            std::uint64_t offset,
                                            std::uint64_t len) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  Buffer out;
  std::uint64_t pos = offset;
  std::uint64_t left = len;
  while (left > 0) {
    const std::uint64_t chunk = std::min(left, params_.rsize);
    co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
    co_await rpc_.fabric().transfer(self_, server_.node(),
                                    params_.rpc_header_bytes);
    auto data = co_await server_.read(*path, pos, chunk);
    if (!data) co_return data.error();
    co_await rpc_.fabric().transfer(server_.node(), self_,
                                    params_.rpc_header_bytes + data->size());
    const std::uint64_t got = data->size();
    out.append(std::move(*data));  // splice the chunk's segments
    if (got < chunk) break;  // EOF
    pos += chunk;
    left -= chunk;
  }
  co_return out;
}

sim::Task<Expected<std::uint64_t>> NfsClient::write(fsapi::OpenFile file,
                                                    std::uint64_t offset,
                                                    Buffer data) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(data.size() - pos, params_.wsize);
    co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
    co_await rpc_.fabric().transfer(self_, server_.node(),
                                    params_.rpc_header_bytes + chunk);
    auto w = co_await server_.write(*path, offset + pos,
                                    data.slice(pos, chunk));
    if (!w) co_return w.error();
    co_await rpc_.fabric().transfer(server_.node(), self_,
                                    params_.rpc_header_bytes);
    pos += chunk;
  }
  co_return data.size();
}

sim::Task<void> NfsClient::charge_small_op(std::uint64_t path_bytes) {
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  co_await rpc_.fabric().transfer(self_, server_.node(),
                                  params_.rpc_header_bytes + path_bytes);
}

sim::Task<Expected<void>> NfsClient::truncate(std::string path,
                                              std::uint64_t size) {
  co_await charge_small_op(path.size());
  auto r = co_await server_.setattr_size(path, size);
  co_await rpc_.fabric().transfer(server_.node(), self_,
                                  params_.rpc_header_bytes);
  co_return r;
}

sim::Task<Expected<void>> NfsClient::rename(std::string from, std::string to) {
  co_await charge_small_op(from.size() + to.size());
  auto r = co_await server_.rename_file(from, to);
  co_await rpc_.fabric().transfer(server_.node(), self_,
                                  params_.rpc_header_bytes);
  if (r) {
    for (auto& [fd, p] : fd_table_) {
      if (p == from) p = to;
    }
  }
  co_return r;
}

sim::Task<Expected<void>> NfsClient::unlink(std::string path) {
  co_await rpc_.fabric().node(self_).cpu().use(params_.op_cpu);
  co_await rpc_.fabric().transfer(self_, server_.node(),
                                  params_.rpc_header_bytes + path.size());
  auto r = co_await server_.remove(path);
  co_await rpc_.fabric().transfer(server_.node(), self_,
                                  params_.rpc_header_bytes);
  co_return r;
}

}  // namespace imca::nfs
