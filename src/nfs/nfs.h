// NFS-like single-server file service — the motivation experiment's subject
// (paper §3, Fig 1: NFS/RDMA vs NFS/TCP over IPoIB vs GigE).
//
// One server node holds all files behind a page cache and a RAID array; the
// transport is whatever the owning Fabric was built with, so the same code
// measured under net::ib_rdma(), net::ipoib_rc() and net::gige() yields the
// figure's three curves. The client chunks wire transfers at rsize/wsize
// (64 KB) like a tuned NFSv3 mount and keeps no client cache.
//
// The motivation effect: while every client's file set fits the server page
// cache, read bandwidth is transport-bound (RDMA > IPoIB > GigE); once the
// aggregate working set exceeds server memory, every transport collapses
// onto the disk's rate — "the server is constrained by the ability of the
// disk to match the bandwidth of the network".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fsapi/filesystem.h"
#include "net/rpc.h"
#include "store/block_device.h"
#include "store/object_store.h"

namespace imca::nfs {

struct NfsServerParams {
  SimDuration op_cpu = 10 * kMicro;  // nfsd service path
  std::uint64_t copy_bps = 2 * kGiB;
  std::size_t raid_members = 8;
  store::DiskParams disk = {};
  std::uint64_t page_cache_bytes = 4 * kGiB;  // Fig 1 varies 4 GB vs 8 GB
};

class NfsServer {
 public:
  NfsServer(net::RpcSystem& rpc, net::NodeId node, NfsServerParams params = {});

  net::NodeId node() const noexcept { return node_; }
  store::ObjectStore& files() noexcept { return files_; }
  store::BlockDevice& device() noexcept { return dev_; }

  sim::Task<Expected<store::Attr>> create(std::string path);
  sim::Task<Expected<store::Attr>> getattr(std::string path);
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset, std::uint64_t len);
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset, Buffer data);
  sim::Task<Expected<void>> remove(std::string path);
  sim::Task<Expected<void>> setattr_size(std::string path,
                                         std::uint64_t size);
  sim::Task<Expected<void>> rename_file(std::string from,
                                        std::string to);

 private:
  net::RpcSystem& rpc_;
  net::NodeId node_;
  NfsServerParams params_;
  store::ObjectStore files_;
  store::BlockDevice dev_;
};

struct NfsClientParams {
  SimDuration op_cpu = 5 * kMicro;      // kernel NFS client path
  std::uint64_t rsize = 64 * kKiB;      // wire chunking
  std::uint64_t wsize = 64 * kKiB;
  std::uint64_t rpc_header_bytes = 128;
};

class NfsClient final : public fsapi::FileSystemClient {
 public:
  NfsClient(net::RpcSystem& rpc, net::NodeId self, NfsServer& server,
            NfsClientParams params = {});

  sim::Task<Expected<fsapi::OpenFile>> create(std::string path) override;
  sim::Task<Expected<fsapi::OpenFile>> open(std::string path) override;
  sim::Task<Expected<void>> close(fsapi::OpenFile file) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(fsapi::OpenFile file, std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(fsapi::OpenFile file,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;

 private:
  // One small-op round trip to the server charging both stacks.
  sim::Task<void> charge_small_op(std::uint64_t path_bytes);
  Expected<std::string> path_of(fsapi::OpenFile file) const;

  net::RpcSystem& rpc_;
  net::NodeId self_;
  NfsServer& server_;
  NfsClientParams params_;
  std::map<std::uint64_t, std::string> fd_table_;
  std::uint64_t next_fd_ = 3;
};

}  // namespace imca::nfs
