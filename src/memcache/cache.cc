#include "memcache/cache.h"

#include <cassert>

namespace imca::memcache {

bool McCache::live(std::string_view key, SimTime now) {
  auto it = items_.find(std::string(key));
  if (it == items_.end()) return false;
  Item& item = it->second;
  if (item.expire_at != 0 && item.expire_at <= now) {
    erase(it, /*evicted=*/false, /*expired=*/true);
    return false;
  }
  return true;
}

void McCache::erase(std::unordered_map<std::string, Item>::iterator it,
                    bool evicted, bool expired) {
  Item& item = it->second;
  lru_[item.slab_class].erase(item.lru_pos);
  slabs_.free(item.slab_class);
  stats_.bytes -= total_size(item.key, item.data.size());
  --stats_.curr_items;
  if (evicted) ++stats_.evictions;
  if (expired) ++stats_.expired_unfetched;
  items_.erase(it);
}

Expected<void> McCache::claim_chunk(std::uint32_t cls) {
  if (lru_.size() <= cls) lru_.resize(cls + 1);
  auto r = slabs_.alloc(cls);
  if (r) return {};
  if (r.error() != Errc::kNoSpc) return r.error();
  // Memory limit reached: evict the least-recently-used item of this class.
  auto& lru = lru_[cls];
  if (lru.empty()) return Errc::kNoSpc;  // class has no pages and no victims
  auto victim = items_.find(std::string(lru.back()));
  assert(victim != items_.end());
  erase(victim, /*evicted=*/true, /*expired=*/false);
  return slabs_.alloc(cls);
}

Expected<void> McCache::store(std::string_view key, std::uint32_t flags,
                              SimTime expire_at, Buffer data, SimTime now) {
  if (key.size() > kMaxKeyLen) return Errc::kKeyTooLong;
  auto cls = slabs_.class_for(total_size(key, data.size()));
  if (!cls) return cls.error();

  // Replace any existing item first (set overwrites).
  if (auto it = items_.find(std::string(key)); it != items_.end()) {
    erase(it, false, false);
  }

  if (auto c = claim_chunk(*cls); !c) return c.error();

  auto [it, inserted] = items_.try_emplace(std::string(key));
  assert(inserted);
  Item& item = it->second;
  item.key = it->first;
  item.flags = flags;
  item.expire_at = expire_at;
  item.data = std::move(data);
  item.slab_class = *cls;
  item.cas = next_cas_++;
  lru_[*cls].push_front(std::string_view(it->first));
  item.lru_pos = lru_[*cls].begin();

  stats_.bytes += total_size(key, item.data.size());
  ++stats_.curr_items;
  (void)now;
  return {};
}

Expected<void> McCache::set(std::string_view key, std::uint32_t flags,
                            SimTime expire_at, Buffer data, SimTime now) {
  ++stats_.cmd_set;
  return store(key, flags, expire_at, std::move(data), now);
}

Expected<void> McCache::add(std::string_view key, std::uint32_t flags,
                            SimTime expire_at, Buffer data, SimTime now) {
  ++stats_.cmd_set;
  if (live(key, now)) return Errc::kNotStored;
  return store(key, flags, expire_at, std::move(data), now);
}

Expected<void> McCache::replace(std::string_view key, std::uint32_t flags,
                                SimTime expire_at, Buffer data, SimTime now) {
  ++stats_.cmd_set;
  if (!live(key, now)) return Errc::kNotStored;
  return store(key, flags, expire_at, std::move(data), now);
}

Expected<void> McCache::append(std::string_view key, Buffer data,
                               SimTime now) {
  ++stats_.cmd_set;
  if (!live(key, now)) return Errc::kNotStored;
  const Item& old = items_.find(std::string(key))->second;
  Buffer merged = old.data;  // shares segments
  merged.append(std::move(data));
  return store(key, old.flags, old.expire_at, std::move(merged), now);
}

Expected<void> McCache::prepend(std::string_view key, Buffer data,
                                SimTime now) {
  ++stats_.cmd_set;
  if (!live(key, now)) return Errc::kNotStored;
  const Item& old = items_.find(std::string(key))->second;
  Buffer merged = std::move(data);
  merged.append(old.data);
  return store(key, old.flags, old.expire_at, std::move(merged), now);
}

Expected<Value> McCache::get(std::string_view key, SimTime now) {
  ++stats_.cmd_get;
  if (!live(key, now)) {
    ++stats_.get_misses;
    return Errc::kNoEnt;
  }
  auto it = items_.find(std::string(key));
  Item& item = it->second;
  // Refresh LRU position.
  auto& lru = lru_[item.slab_class];
  lru.splice(lru.begin(), lru, item.lru_pos);
  ++stats_.get_hits;
  return Value{item.flags, item.data, item.cas};
}

Expected<void> McCache::cas(std::string_view key, std::uint32_t flags,
                            SimTime expire_at, Buffer data,
                            std::uint64_t expected_cas, SimTime now) {
  ++stats_.cmd_set;
  if (!live(key, now)) return Errc::kNoEnt;  // NOT_FOUND
  const Item& item = items_.find(std::string(key))->second;
  if (item.cas != expected_cas) return Errc::kBusy;  // EXISTS
  return store(key, flags, expire_at, std::move(data), now);
}

Expected<std::uint64_t> McCache::arith(std::string_view key,
                                       std::uint64_t delta, bool up,
                                       SimTime now) {
  ++stats_.cmd_set;
  if (!live(key, now)) return Errc::kNoEnt;
  Item& item = items_.find(std::string(key))->second;
  // Parse the decimal-ASCII value in place, as memcached does.
  std::uint64_t value = 0;
  if (item.data.empty()) return Errc::kInval;
  for (const auto b : item.data) {
    const char c = static_cast<char>(b);
    if (c < '0' || c > '9') return Errc::kInval;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (up) {
    value += delta;  // wraps at 2^64, like memcached
  } else {
    value = delta > value ? 0 : value - delta;  // decr clamps at zero
  }
  auto r = store(key, item.flags, item.expire_at,
                 Buffer::of_string(std::to_string(value)), now);
  if (!r) return r.error();
  return value;
}

Expected<std::uint64_t> McCache::incr(std::string_view key,
                                      std::uint64_t delta, SimTime now) {
  return arith(key, delta, /*up=*/true, now);
}

Expected<std::uint64_t> McCache::decr(std::string_view key,
                                      std::uint64_t delta, SimTime now) {
  return arith(key, delta, /*up=*/false, now);
}

Expected<void> McCache::del(std::string_view key) {
  auto it = items_.find(std::string(key));
  if (it == items_.end()) return Errc::kNoEnt;
  erase(it, false, false);
  return {};
}

void McCache::flush_all() {
  while (!items_.empty()) {
    erase(items_.begin(), false, false);
  }
}

void McCache::flush_clean(std::uint32_t keep_mask) {
  for (auto it = items_.begin(); it != items_.end();) {
    if (it->second.flags & keep_mask) {
      ++it;
    } else {
      erase(it++, false, false);
    }
  }
}

}  // namespace imca::memcache
