// The memcached storage engine: hash table + per-slab-class LRU + lazy
// expiration, with real bytes stored per item.
//
// Semantics follow memcached 1.2 (the daemon the paper deploys):
//   * keys are at most 250 bytes, items at most 1 MB including overhead;
//   * set always stores; add only if absent; replace only if present;
//   * append/prepend splice bytes onto an existing item;
//   * expired items are removed lazily, on the access that finds them;
//   * when the memory limit is hit, the least-recently-used item *of the
//     same slab class* is evicted to make room ("MCDs are self-managing",
//     paper §4.4).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/errc.h"
#include "common/expected.h"
#include "common/units.h"
#include "memcache/slab.h"

namespace imca::memcache {

inline constexpr std::uint64_t kMaxKeyLen = 250;

// Reserved item-flags bit marking write-back dirty data (DESIGN.md §5j).
// Items carrying it survive a clean flush ("flush_all clean"), which is what
// a rejoin purge issues: a revived daemon must drop every cacheable copy it
// could serve stale, but dirty items are the *only* copy of acked bytes and
// may never be purged by a reader's probe. A crashed daemon restarts empty
// regardless, so the bit only matters on daemons that stayed up.
inline constexpr std::uint32_t kWbDirtyFlag = 0x40000000u;

struct Value {
  std::uint32_t flags = 0;
  // Shared segments: a get hands back views of the stored item, and a store
  // adopts the request's segments — the slab never re-copies payload bytes.
  Buffer data;
  // Unique per stored version; returned by gets and checked by cas.
  std::uint64_t cas = 0;
};

struct CacheStats {
  std::uint64_t cmd_get = 0;
  std::uint64_t cmd_set = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired_unfetched = 0;
  std::uint64_t curr_items = 0;
  std::uint64_t bytes = 0;  // key+value+overhead of live items
};

class McCache {
 public:
  explicit McCache(std::uint64_t memory_limit)
      : slabs_(memory_limit) {}

  McCache(const McCache&) = delete;
  McCache& operator=(const McCache&) = delete;

  // Store unconditionally. `expire_at` of 0 means "never" (IMCa's usage).
  Expected<void> set(std::string_view key, std::uint32_t flags,
                     SimTime expire_at, Buffer data,
                     SimTime now);

  // Store only if the key is absent / present.
  Expected<void> add(std::string_view key, std::uint32_t flags,
                     SimTime expire_at, Buffer data, SimTime now);
  Expected<void> replace(std::string_view key, std::uint32_t flags,
                         SimTime expire_at, Buffer data, SimTime now);

  // Splice bytes after / before an existing item's data.
  Expected<void> append(std::string_view key, Buffer data, SimTime now);
  Expected<void> prepend(std::string_view key, Buffer data, SimTime now);

  // Fetch; refreshes LRU position. kNoEnt on miss or lazy expiry.
  Expected<Value> get(std::string_view key, SimTime now);

  // Compare-and-swap: store only if the item's current cas id equals
  // `expected_cas`. kNoEnt if absent, kBusy ("EXISTS") on a cas mismatch.
  Expected<void> cas(std::string_view key, std::uint32_t flags,
                     SimTime expire_at, Buffer data,
                     std::uint64_t expected_cas, SimTime now);

  // Arithmetic on a decimal-ASCII value (memcached's incr/decr). Returns the
  // new value. kNoEnt if absent; kInval if the stored data is not a number.
  // decr clamps at zero; incr wraps at 2^64, as memcached does.
  Expected<std::uint64_t> incr(std::string_view key, std::uint64_t delta,
                               SimTime now);
  Expected<std::uint64_t> decr(std::string_view key, std::uint64_t delta,
                               SimTime now);

  Expected<void> del(std::string_view key);

  // Drop everything (memcached's flush_all).
  void flush_all();

  // Drop every item except those whose flags carry `keep_mask` bits — the
  // clean flush a rejoin purge uses so write-back dirty replicas survive.
  void flush_clean(std::uint32_t keep_mask = kWbDirtyFlag);

  const CacheStats& stats() const noexcept { return stats_; }
  const SlabAllocator& slabs() const noexcept { return slabs_; }
  std::size_t item_count() const noexcept { return items_.size(); }

 private:
  struct Item {
    std::string key;
    std::uint32_t flags = 0;
    SimTime expire_at = 0;
    Buffer data;
    std::uint32_t slab_class = 0;
    std::uint64_t cas = 0;
    std::list<std::string_view>::iterator lru_pos;
  };

  static std::uint64_t total_size(std::string_view key, std::uint64_t value_len) {
    return key.size() + value_len + kItemOverhead;
  }

  Expected<void> store(std::string_view key, std::uint32_t flags,
                       SimTime expire_at, Buffer data, SimTime now);
  Expected<std::uint64_t> arith(std::string_view key, std::uint64_t delta,
                                bool up, SimTime now);
  // True if the item exists and is not expired; expired items are reaped.
  bool live(std::string_view key, SimTime now);
  void erase(std::unordered_map<std::string, Item>::iterator it, bool evicted,
             bool expired);
  // Make a chunk of `cls` available, evicting that class's LRU if needed.
  Expected<void> claim_chunk(std::uint32_t cls);

  SlabAllocator slabs_;
  std::uint64_t next_cas_ = 1;
  std::unordered_map<std::string, Item> items_;
  // One LRU list per slab class; front = most recently used. string_views
  // point at the map keys (stable under rehash).
  std::vector<std::list<std::string_view>> lru_;
  CacheStats stats_;
};

}  // namespace imca::memcache
