#include "memcache/protocol.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

namespace imca::memcache {
namespace {

constexpr std::string_view kCrlf = "\r\n";

const char* verb_name(StoreVerb v) {
  switch (v) {
    case StoreVerb::kSet: return "set";
    case StoreVerb::kAdd: return "add";
    case StoreVerb::kReplace: return "replace";
    case StoreVerb::kAppend: return "append";
    case StoreVerb::kPrepend: return "prepend";
  }
  return "?";
}

// Cursor over the segment chain of a message; reads CRLF-terminated lines
// and exact-size binary blocks. Data blocks come back as zero-copy slices of
// the message's own segments; header lines are borrowed in place when they
// fit one segment and staged through a small scratch string when they
// straddle a boundary.
class Scanner {
 public:
  explicit Scanner(const Buffer& buf) : buf_(buf) {}

  // Next line without its CRLF; kProto if no terminator remains. The view is
  // valid until the next line() call.
  Expected<std::string_view> line() {
    const auto pos = buf_.find(kCrlf, cursor_);
    if (pos == Buffer::npos) return Errc::kProto;
    const std::size_t len = pos - cursor_;
    std::string_view out;
    if (const auto flat = buf_.contiguous(cursor_, len); flat.size() == len) {
      out = {reinterpret_cast<const char*>(flat.data()), len};
    } else {
      scratch_.resize(len);
      buf_.copy_to(cursor_,
                   {reinterpret_cast<std::byte*>(scratch_.data()), len});
      out = scratch_;
    }
    cursor_ = pos + kCrlf.size();
    return out;
  }

  // Exactly `n` bytes followed by CRLF (a data block).
  Expected<Buffer> block(std::size_t n) {
    if (buf_.size() - cursor_ < n + kCrlf.size()) return Errc::kProto;
    if (buf_.at(cursor_ + n) != std::byte{'\r'} ||
        buf_.at(cursor_ + n + 1) != std::byte{'\n'}) {
      return Errc::kProto;
    }
    Buffer out = buf_.slice(cursor_, n);
    cursor_ += n + kCrlf.size();
    return out;
  }

  bool exhausted() const noexcept { return cursor_ == buf_.size(); }

 private:
  const Buffer& buf_;
  std::string scratch_;
  std::size_t cursor_ = 0;
};

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == ' ') ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

template <typename T>
Expected<T> parse_num(std::string_view s) {
  T v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return Errc::kProto;
  return v;
}

void put_line(ByteBuf& out, std::string_view s) {
  out.put_raw(s);
  out.put_raw(kCrlf);
}

}  // namespace

namespace {
ByteBuf encode_multikey(const char* verb, std::span<const std::string> keys) {
  ByteBuf out;
  std::string line = verb;
  for (const auto& k : keys) {
    line += ' ';
    line += k;
  }
  put_line(out, line);
  return out;
}
}  // namespace

ByteBuf encode_get(std::span<const std::string> keys) {
  return encode_multikey("get", keys);
}

ByteBuf encode_gets(std::span<const std::string> keys) {
  return encode_multikey("gets", keys);
}

ByteBuf encode_store(StoreVerb verb, std::string_view key, std::uint32_t flags,
                     std::uint32_t exptime_s, const Buffer& data) {
  ByteBuf out;
  char head[320];
  std::snprintf(head, sizeof head, "%s %.*s %u %u %zu", verb_name(verb),
                static_cast<int>(key.size()), key.data(), flags, exptime_s,
                data.size());
  put_line(out, head);
  out.put_buffer(data);
  out.put_raw(kCrlf);
  return out;
}

ByteBuf encode_cas(std::string_view key, std::uint32_t flags,
                   std::uint32_t exptime_s, const Buffer& data,
                   std::uint64_t cas_id) {
  ByteBuf out;
  char head[360];
  std::snprintf(head, sizeof head, "cas %.*s %u %u %zu %llu",
                static_cast<int>(key.size()), key.data(), flags, exptime_s,
                data.size(), static_cast<unsigned long long>(cas_id));
  put_line(out, head);
  out.put_buffer(data);
  out.put_raw(kCrlf);
  return out;
}

ByteBuf encode_incr(std::string_view key, std::uint64_t delta) {
  ByteBuf out;
  put_line(out, "incr " + std::string(key) + " " + std::to_string(delta));
  return out;
}

ByteBuf encode_decr(std::string_view key, std::uint64_t delta) {
  ByteBuf out;
  put_line(out, "decr " + std::string(key) + " " + std::to_string(delta));
  return out;
}

ByteBuf encode_delete(std::string_view key) {
  ByteBuf out;
  put_line(out, std::string("delete ") + std::string(key));
  return out;
}

ByteBuf encode_flush_all() {
  ByteBuf out;
  put_line(out, "flush_all");
  return out;
}

ByteBuf encode_flush_clean() {
  ByteBuf out;
  put_line(out, "flush_all clean");
  return out;
}

ByteBuf encode_stats() {
  ByteBuf out;
  put_line(out, "stats");
  return out;
}

Expected<GetResult> parse_get_response(ByteBuf& in) {
  Scanner sc(in.buffer());
  GetResult result;
  while (true) {
    auto line = sc.line();
    if (!line) return line.error();
    if (*line == "END") return result;
    auto tok = split_ws(*line);
    if ((tok.size() != 4 && tok.size() != 5) || tok[0] != "VALUE") {
      return Errc::kProto;
    }
    auto flags = parse_num<std::uint32_t>(tok[2]);
    auto nbytes = parse_num<std::size_t>(tok[3]);
    if (!flags || !nbytes) return Errc::kProto;
    Value v;
    if (tok.size() == 5) {  // gets carries the cas id
      auto cas_id = parse_num<std::uint64_t>(tok[4]);
      if (!cas_id) return Errc::kProto;
      v.cas = *cas_id;
    }
    auto data = sc.block(*nbytes);
    if (!data) return data.error();
    v.flags = *flags;
    v.data = std::move(*data);
    result.emplace(std::string(tok[1]), std::move(v));
  }
}

Expected<StoreReply> parse_store_response(ByteBuf& in) {
  Scanner sc(in.buffer());
  auto line = sc.line();
  if (!line) return line.error();
  if (*line == "STORED") return StoreReply::kStored;
  if (*line == "NOT_STORED") return StoreReply::kNotStored;
  if (line->starts_with("SERVER_ERROR")) return StoreReply::kServerError;
  return Errc::kProto;
}

Expected<CasReply> parse_cas_response(ByteBuf& in) {
  Scanner sc(in.buffer());
  auto line = sc.line();
  if (!line) return line.error();
  if (*line == "STORED") return CasReply::kStored;
  if (*line == "EXISTS") return CasReply::kExists;
  if (*line == "NOT_FOUND") return CasReply::kNotFound;
  return Errc::kProto;
}

Expected<std::uint64_t> parse_arith_response(ByteBuf& in) {
  Scanner sc(in.buffer());
  auto line = sc.line();
  if (!line) return line.error();
  if (*line == "NOT_FOUND") return Errc::kNoEnt;
  if (line->starts_with("CLIENT_ERROR")) return Errc::kInval;
  return parse_num<std::uint64_t>(*line);
}

Expected<DeleteReply> parse_delete_response(ByteBuf& in) {
  Scanner sc(in.buffer());
  auto line = sc.line();
  if (!line) return line.error();
  if (*line == "DELETED") return DeleteReply::kDeleted;
  if (*line == "NOT_FOUND") return DeleteReply::kNotFound;
  return Errc::kProto;
}

Expected<std::map<std::string, std::string>> parse_stats_response(
    ByteBuf& in) {
  Scanner sc(in.buffer());
  std::map<std::string, std::string> out;
  while (true) {
    auto line = sc.line();
    if (!line) return line.error();
    if (*line == "END") return out;
    auto tok = split_ws(*line);
    if (tok.size() != 3 || tok[0] != "STAT") return Errc::kProto;
    out.emplace(std::string(tok[1]), std::string(tok[2]));
  }
}

namespace {

ByteBuf error_reply() {
  ByteBuf out;
  put_line(out, "ERROR");
  return out;
}

ByteBuf do_get(McCache& cache, const std::vector<std::string_view>& tok,
               SimTime now, bool with_cas) {
  ByteBuf out;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    auto v = cache.get(tok[i], now);
    if (!v) continue;  // miss: the key simply isn't echoed back
    char head[360];
    if (with_cas) {
      std::snprintf(head, sizeof head, "VALUE %.*s %u %zu %llu",
                    static_cast<int>(tok[i].size()), tok[i].data(), v->flags,
                    v->data.size(),
                    static_cast<unsigned long long>(v->cas));
    } else {
      std::snprintf(head, sizeof head, "VALUE %.*s %u %zu",
                    static_cast<int>(tok[i].size()), tok[i].data(), v->flags,
                    v->data.size());
    }
    put_line(out, head);
    out.put_buffer(v->data);
    out.put_raw(kCrlf);
  }
  put_line(out, "END");
  return out;
}

ByteBuf do_cas(McCache& cache, const std::vector<std::string_view>& tok,
               Scanner& sc, SimTime now) {
  if (tok.size() != 6) return error_reply();
  auto flags = parse_num<std::uint32_t>(tok[2]);
  auto exptime = parse_num<std::uint32_t>(tok[3]);
  auto nbytes = parse_num<std::size_t>(tok[4]);
  auto cas_id = parse_num<std::uint64_t>(tok[5]);
  if (!flags || !exptime || !nbytes || !cas_id) return error_reply();
  auto data = sc.block(*nbytes);
  if (!data) return error_reply();
  const SimTime expire_at =
      *exptime == 0 ? 0 : now + static_cast<SimTime>(*exptime) * kSecond;
  auto r = cache.cas(tok[1], *flags, expire_at, std::move(*data), *cas_id, now);
  ByteBuf out;
  if (r) {
    put_line(out, "STORED");
  } else if (r.error() == Errc::kBusy) {
    put_line(out, "EXISTS");
  } else if (r.error() == Errc::kNoEnt) {
    put_line(out, "NOT_FOUND");
  } else {
    put_line(out, "SERVER_ERROR out of memory storing object");
  }
  return out;
}

ByteBuf do_arith(McCache& cache, const std::vector<std::string_view>& tok,
                 bool up, SimTime now) {
  if (tok.size() != 3) return error_reply();
  auto delta = parse_num<std::uint64_t>(tok[2]);
  if (!delta) return error_reply();
  auto r = up ? cache.incr(tok[1], *delta, now)
              : cache.decr(tok[1], *delta, now);
  ByteBuf out;
  if (r) {
    put_line(out, std::to_string(*r));
  } else if (r.error() == Errc::kNoEnt) {
    put_line(out, "NOT_FOUND");
  } else {
    put_line(out,
             "CLIENT_ERROR cannot increment or decrement non-numeric value");
  }
  return out;
}

ByteBuf do_store(McCache& cache, StoreVerb verb,
                 const std::vector<std::string_view>& tok, Scanner& sc,
                 SimTime now) {
  if (tok.size() != 5) return error_reply();
  auto flags = parse_num<std::uint32_t>(tok[2]);
  auto exptime = parse_num<std::uint32_t>(tok[3]);
  auto nbytes = parse_num<std::size_t>(tok[4]);
  if (!flags || !exptime || !nbytes) return error_reply();
  auto data = sc.block(*nbytes);
  if (!data) return error_reply();
  const SimTime expire_at =
      *exptime == 0 ? 0 : now + static_cast<SimTime>(*exptime) * kSecond;

  Expected<void> r = Errc::kInval;
  switch (verb) {
    case StoreVerb::kSet:
      r = cache.set(tok[1], *flags, expire_at, std::move(*data), now);
      break;
    case StoreVerb::kAdd:
      r = cache.add(tok[1], *flags, expire_at, std::move(*data), now);
      break;
    case StoreVerb::kReplace:
      r = cache.replace(tok[1], *flags, expire_at, std::move(*data), now);
      break;
    case StoreVerb::kAppend:
      r = cache.append(tok[1], std::move(*data), now);
      break;
    case StoreVerb::kPrepend:
      r = cache.prepend(tok[1], std::move(*data), now);
      break;
  }

  ByteBuf out;
  if (r) {
    put_line(out, "STORED");
  } else if (r.error() == Errc::kNotStored) {
    put_line(out, "NOT_STORED");
  } else if (r.error() == Errc::kTooBig) {
    put_line(out, "SERVER_ERROR object too large for cache");
  } else if (r.error() == Errc::kKeyTooLong) {
    put_line(out, "CLIENT_ERROR bad command line format");
  } else {
    put_line(out, "SERVER_ERROR out of memory storing object");
  }
  return out;
}

ByteBuf do_delete(McCache& cache, const std::vector<std::string_view>& tok) {
  if (tok.size() != 2) return error_reply();
  ByteBuf out;
  put_line(out, cache.del(tok[1]) ? "DELETED" : "NOT_FOUND");
  return out;
}

ByteBuf do_stats(const McCache& cache) {
  const CacheStats& s = cache.stats();
  ByteBuf out;
  char line[96];
  const auto stat = [&](const char* name, std::uint64_t v) {
    std::snprintf(line, sizeof line, "STAT %s %" PRIu64, name, v);
    put_line(out, line);
  };
  stat("cmd_get", s.cmd_get);
  stat("cmd_set", s.cmd_set);
  stat("get_hits", s.get_hits);
  stat("get_misses", s.get_misses);
  stat("evictions", s.evictions);
  stat("expired_unfetched", s.expired_unfetched);
  stat("curr_items", s.curr_items);
  stat("bytes", s.bytes);
  stat("limit_maxbytes", cache.slabs().memory_limit());
  put_line(out, "END");
  return out;
}

}  // namespace

std::size_t count_request_keys(const ByteBuf& request) {
  Scanner sc(request.buffer());
  auto first = sc.line();
  if (!first) return 1;
  const auto tok = split_ws(*first);
  if (tok.size() >= 2 && (tok[0] == "get" || tok[0] == "gets")) {
    return tok.size() - 1;
  }
  return 1;
}

ByteBuf handle_request(McCache& cache, ByteBuf request, SimTime now) {
  Scanner sc(request.buffer());
  auto first = sc.line();
  if (!first) return error_reply();
  const auto tok = split_ws(*first);
  if (tok.empty()) return error_reply();

  const std::string_view cmd = tok[0];
  if (cmd == "get" || cmd == "gets") {
    if (tok.size() < 2) return error_reply();
    return do_get(cache, tok, now, /*with_cas=*/cmd == "gets");
  }
  if (cmd == "cas") return do_cas(cache, tok, sc, now);
  if (cmd == "incr") return do_arith(cache, tok, /*up=*/true, now);
  if (cmd == "decr") return do_arith(cache, tok, /*up=*/false, now);
  if (cmd == "set") return do_store(cache, StoreVerb::kSet, tok, sc, now);
  if (cmd == "add") return do_store(cache, StoreVerb::kAdd, tok, sc, now);
  if (cmd == "replace")
    return do_store(cache, StoreVerb::kReplace, tok, sc, now);
  if (cmd == "append")
    return do_store(cache, StoreVerb::kAppend, tok, sc, now);
  if (cmd == "prepend")
    return do_store(cache, StoreVerb::kPrepend, tok, sc, now);
  if (cmd == "delete") return do_delete(cache, tok);
  if (cmd == "stats") return do_stats(cache);
  if (cmd == "flush_all") {
    // "flush_all clean" spares items flagged write-back dirty: the rejoin
    // purge must never destroy the only surviving replica of acked bytes.
    if (tok.size() >= 2 && tok[1] == "clean") {
      cache.flush_clean();
    } else {
      cache.flush_all();
    }
    ByteBuf out;
    put_line(out, "OK");
    return out;
  }
  return error_reply();
}

}  // namespace imca::memcache
