#include "memcache/slab.h"

#include <cmath>

namespace imca::memcache {

SlabAllocator::SlabAllocator(std::uint64_t memory_limit,
                             std::uint64_t base_chunk, double growth_factor,
                             std::uint64_t page_size)
    : memory_limit_(memory_limit), page_size_(page_size) {
  std::uint64_t chunk = base_chunk;
  while (chunk < page_size_) {
    classes_.push_back(Class{chunk, page_size_ / chunk});
    const auto next = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(chunk) * growth_factor));
    // Align like memcached (8-byte chunks) and guarantee progress.
    chunk = ((next + 7) / 8) * 8;
    if (chunk <= classes_.back().chunk_size) chunk = classes_.back().chunk_size + 8;
  }
  // Final class: one chunk occupies the whole page (1 MB items).
  classes_.push_back(Class{page_size_, 1});
}

Expected<std::uint32_t> SlabAllocator::class_for(
    std::uint64_t total_size) const {
  if (total_size > kMaxItemTotal || total_size > page_size_) {
    return Errc::kTooBig;
  }
  for (std::uint32_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].chunk_size >= total_size) return i;
  }
  return Errc::kTooBig;
}

Expected<void> SlabAllocator::alloc(std::uint32_t cls) {
  Class& c = classes_.at(cls);
  if (c.free == 0) {
    if ((pages_assigned_ + 1) * page_size_ > memory_limit_) {
      return Errc::kNoSpc;  // caller evicts from this class's LRU
    }
    ++pages_assigned_;
    c.free += c.chunks_per_page;
  }
  --c.free;
  ++c.used;
  return {};
}

void SlabAllocator::free(std::uint32_t cls) {
  Class& c = classes_.at(cls);
  --c.used;
  ++c.free;
}

}  // namespace imca::memcache
