// A memcached daemon ("MCD") bound to a simulated node.
//
// The daemon registers the memcached port on its node and services protocol
// requests, charging its node's CPU a parse/hash cost plus a per-byte copy
// cost. Because each daemon sits on its own node with its own NIC, an array
// of MCDs aggregates network and CPU capacity — the scalability mechanism
// the paper's Figs 5 and 9 measure.
//
// stop()/start() model killing and restarting the daemon for the
// failure-injection experiments (paper §4.4: failures in MCDs must not
// impact correctness).
#pragma once

#include <cstdint>
#include <optional>

#include "memcache/cache.h"
#include "memcache/protocol.h"
#include "net/rpc.h"
#include "sim/resource.h"

namespace imca::memcache {

struct McServerParams {
  // Fixed cost to parse a request off the socket.
  SimDuration base_service = 3 * kMicro;
  // Per-key cost (hash lookup, LRU bump, VALUE header emit) — the reason a
  // 256-byte IMCa block loses to NoCache on large reads (paper §5.3:
  // "CMCache must make multiple trips to the MCDs").
  SimDuration per_key_service = 3 * kMicro;
  // Byte-movement rate through the daemon: slab copy + socket write + TCP
  // checksumming on one 2008-era core. This caps a daemon's data throughput
  // at roughly the ~220 MB/s per MCD the paper's Fig 9 implies.
  std::uint64_t copy_bps = 450 * kMiB;
};

class McServer {
 public:
  McServer(net::RpcSystem& rpc, net::NodeId node, std::uint64_t memory_limit,
           McServerParams params = {});
  ~McServer();
  McServer(const McServer&) = delete;
  McServer& operator=(const McServer&) = delete;

  // Begin accepting requests (registers the RPC handler).
  void start();
  // Kill the daemon: stop listening and discard all cached items (a daemon
  // restart comes back empty, as a real memcached would).
  void stop();
  bool running() const { return rpc_.listening(node_, net::kPortMemcached); }

  // Deterministic crash window for fault plans: stop() at `at`, and if
  // `restart_at` is given, start() again then (cold, per stop()'s flush).
  void schedule_crash(SimTime at, std::optional<SimTime> restart_at = std::nullopt);

  McCache& cache() noexcept { return cache_; }
  const McCache& cache() const noexcept { return cache_; }
  net::NodeId node() const noexcept { return node_; }

 private:
  sim::Task<ByteBuf> handle(ByteBuf request, net::NodeId from);

  net::RpcSystem& rpc_;
  net::NodeId node_;
  McCache cache_;
  McServerParams params_;
  // memcached 1.2 is single-threaded: all request processing serializes
  // through this one worker, regardless of how many cores the node has.
  // This is why a loaded bank keeps gaining from daemons beyond the point
  // where its memory stops missing (paper §5.2).
  sim::FifoResource worker_;
};

}  // namespace imca::memcache
