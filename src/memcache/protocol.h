// The memcached ASCII protocol — real encode/parse of the wire text.
//
// What the simulated NICs carry between libmemcache clients and daemons is
// the actual protocol byte stream ("set <key> <flags> <exptime> <bytes>\r\n"
// followed by a binary-safe data block, "VALUE ..." responses, "END\r\n"),
// so message sizes, parsing behaviour and malformed-input handling are the
// real thing, not placeholders.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/bytebuf.h"
#include "common/errc.h"
#include "common/expected.h"
#include "memcache/cache.h"

namespace imca::memcache {

enum class StoreVerb { kSet, kAdd, kReplace, kAppend, kPrepend };

// --- client-side request encoding ---

ByteBuf encode_get(std::span<const std::string> keys);
// gets: like get but the VALUE lines carry each item's cas id.
ByteBuf encode_gets(std::span<const std::string> keys);
// The data block is spliced into the request without copying.
ByteBuf encode_store(StoreVerb verb, std::string_view key, std::uint32_t flags,
                     std::uint32_t exptime_s, const Buffer& data);
// cas: store only if the item's cas id still equals `cas_id`.
ByteBuf encode_cas(std::string_view key, std::uint32_t flags,
                   std::uint32_t exptime_s, const Buffer& data,
                   std::uint64_t cas_id);
ByteBuf encode_incr(std::string_view key, std::uint64_t delta);
ByteBuf encode_decr(std::string_view key, std::uint64_t delta);
ByteBuf encode_delete(std::string_view key);
ByteBuf encode_flush_all();
// flush_all clean: drop everything except write-back dirty items.
ByteBuf encode_flush_clean();
ByteBuf encode_stats();

// --- client-side response parsing ---

// Values returned by a get, keyed by item key. Missing keys simply do not
// appear (the protocol's way of signalling a miss). Each Value's data is a
// zero-copy view over the reply's receive buffer.
using GetResult = std::map<std::string, Value>;
Expected<GetResult> parse_get_response(ByteBuf& in);

enum class StoreReply { kStored, kNotStored, kServerError };
Expected<StoreReply> parse_store_response(ByteBuf& in);

// cas outcomes: stored, lost the race (EXISTS), or the key vanished.
enum class CasReply { kStored, kExists, kNotFound };
Expected<CasReply> parse_cas_response(ByteBuf& in);

// incr/decr: the new value, kNoEnt for NOT_FOUND, kInval for non-numeric.
Expected<std::uint64_t> parse_arith_response(ByteBuf& in);

enum class DeleteReply { kDeleted, kNotFound };
Expected<DeleteReply> parse_delete_response(ByteBuf& in);

// STAT name value pairs.
Expected<std::map<std::string, std::string>> parse_stats_response(ByteBuf& in);

// --- server side ---

// Parse one request off `request`, execute it against `cache` and encode the
// response. `now` drives lazy expiration. Malformed input yields the
// protocol's "ERROR\r\n", never an exception.
ByteBuf handle_request(McCache& cache, ByteBuf request, SimTime now);

// Number of keys a request makes the daemon touch (every key of a multi-get
// is hashed and LRU-bumped; storage/delete ops touch one). Used by the
// daemon's service-time model.
std::size_t count_request_keys(const ByteBuf& request);

}  // namespace imca::memcache
