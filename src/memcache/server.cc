#include "memcache/server.h"

namespace imca::memcache {

McServer::McServer(net::RpcSystem& rpc, net::NodeId node,
                   std::uint64_t memory_limit, McServerParams params)
    : rpc_(rpc),
      node_(node),
      cache_(memory_limit),
      params_(params),
      worker_(rpc.fabric().loop(), 1,
              "mcd" + std::to_string(node) + ".worker") {}

McServer::~McServer() {
  if (running()) rpc_.shutdown(node_, net::kPortMemcached);
}

void McServer::start() {
  rpc_.listen(node_, net::kPortMemcached,
              [this](ByteBuf req, net::NodeId from) -> sim::Task<ByteBuf> {
                return handle(std::move(req), from);
              });
}

void McServer::stop() {
  rpc_.shutdown(node_, net::kPortMemcached);
  cache_.flush_all();  // a restarted daemon starts cold
}

void McServer::schedule_crash(SimTime at, std::optional<SimTime> restart_at) {
  sim::EventLoop& loop = rpc_.fabric().loop();
  loop.spawn([](McServer* self, sim::EventLoop* lp, SimTime when,
                std::optional<SimTime> revive) -> sim::Task<void> {
    co_await lp->sleep_until(when);
    self->stop();
    if (revive) {
      co_await lp->sleep_until(*revive);
      self->start();
    }
  }(this, &loop, at, restart_at));
}

sim::Task<ByteBuf> McServer::handle(ByteBuf request, net::NodeId) {
  sim::EventLoop& loop = rpc_.fabric().loop();
  const std::uint64_t in_bytes = request.size();
  const std::size_t keys = count_request_keys(request);
  ByteBuf response = handle_request(cache_, std::move(request), loop.now());
  const SimDuration service =
      params_.base_service + keys * params_.per_key_service +
      transfer_time(in_bytes + response.size(), params_.copy_bps);
  co_await worker_.use(service);
  co_return response;
}

}  // namespace imca::memcache
