// Slab allocator accounting, after memcached 1.2.
//
// Memory is carved into 1 MB pages; each page is assigned to a size class
// and split into fixed-size chunks (classes grow geometrically from a base
// chunk by a factor of 1.25). An item occupies one chunk of the smallest
// class that fits key + value + item overhead. When every page is assigned
// and a class has no free chunk, the *caller* must evict from that class's
// LRU — exactly the behaviour that produces memcached's per-class capacity
// misses in Figs 7/8.
//
// This is an accounting model: chunk bookkeeping is real, but item payloads
// live in std::vector (we track where bytes WOULD live, while storing the
// actual bytes for correctness checks).
#pragma once

#include <cstdint>
#include <vector>

#include "common/errc.h"
#include "common/expected.h"
#include "common/units.h"

namespace imca::memcache {

// Header + suffix + pointer overhead memcached adds to every item.
inline constexpr std::uint64_t kItemOverhead = 48;
// Hard ceiling on one item (key + overhead + value), like memcached's 1 MB.
inline constexpr std::uint64_t kMaxItemTotal = 1 * kMiB;

class SlabAllocator {
 public:
  // `memory_limit` is the daemon's "-m" cache size (6 GB in the paper).
  SlabAllocator(std::uint64_t memory_limit, std::uint64_t base_chunk = 88,
                double growth_factor = 1.25,
                std::uint64_t page_size = 1 * kMiB);

  // Class index whose chunk fits `total_size` bytes, or kTooBig.
  Expected<std::uint32_t> class_for(std::uint64_t total_size) const;

  // Take one chunk in `cls`. Fails with kNoSpc when the class has no free
  // chunk and no page can be assigned (memory limit reached) — the caller
  // should evict an item of this class and retry.
  Expected<void> alloc(std::uint32_t cls);

  // Return one chunk of `cls` to its free list.
  void free(std::uint32_t cls);

  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(classes_.size());
  }
  std::uint64_t chunk_size(std::uint32_t cls) const {
    return classes_.at(cls).chunk_size;
  }
  std::uint64_t used_chunks(std::uint32_t cls) const {
    return classes_.at(cls).used;
  }
  std::uint64_t free_chunks(std::uint32_t cls) const {
    return classes_.at(cls).free;
  }
  std::uint64_t pages_assigned() const noexcept { return pages_assigned_; }
  std::uint64_t memory_limit() const noexcept { return memory_limit_; }
  // Bytes of cache memory committed to pages.
  std::uint64_t committed() const noexcept {
    return pages_assigned_ * page_size_;
  }

 private:
  struct Class {
    std::uint64_t chunk_size;
    std::uint64_t chunks_per_page;
    std::uint64_t used = 0;
    std::uint64_t free = 0;
  };

  std::uint64_t memory_limit_;
  std::uint64_t page_size_;
  std::uint64_t pages_assigned_ = 0;
  std::vector<Class> classes_;
};

}  // namespace imca::memcache
