// Testbed builders: stand up a whole simulated cluster in a few lines.
//
//  * GlusterTestbed — one GlusterFS brick (+ RAID + page cache), an optional
//    MCD array with the CMCache/SMCache translators wired in, and N client
//    nodes. n_mcds == 0 reproduces the paper's "NoCache" baseline.
//  * LustreTestbed  — MDS + 1..4 data servers + N coherent-cache clients.
//  * NfsTestbed     — one NFS server + N clients on a chosen transport.
//
// All three expose their clients through fsapi::FileSystemClient so the same
// workload code (src/workload) drives every system in every figure.
#pragma once

#include <memory>
#include <vector>

#include "cluster/calibration.h"
#include "fsapi/filesystem.h"
#include "gluster/client.h"
#include "gluster/server.h"
#include "imca/cmcache.h"
#include "imca/config.h"
#include "imca/smcache.h"
#include "lustre/client.h"
#include "lustre/data_server.h"
#include "lustre/mds.h"
#include "memcache/server.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "nfs/nfs.h"

namespace imca::cluster {

struct GlusterTestbedConfig {
  std::size_t n_clients = 1;
  std::size_t n_mcds = 0;  // 0 = plain GlusterFS ("NoCache")
  // Brick grid: n_bricks distribute groups of n_replicas AFR replicas each
  // (n_bricks * n_replicas brick servers total). 1 x 1 — the default — is
  // the paper's single-server testbed and the seed behaviour.
  std::size_t n_bricks = 1;
  std::size_t n_replicas = 1;
  // Wire SMCache into the server stack. false isolates the client-side
  // machinery (partial hits, read-repair): nothing repopulates the MCDs
  // except the clients themselves.
  bool smcache = true;
  core::ImcaConfig imca;
  std::uint64_t mcd_memory = kMcdMemoryBytes;
  net::TransportParams transport = net::ipoib_rc();
  gluster::GlusterServerParams server;
  // Mount parameters for every client (fuse cost + protocol/client
  // deadline/retry policy; defaults are the seed's single-attempt mode).
  gluster::GlusterClientParams client;
  // Deterministic fault plan: probabilistic wire faults on every MCD's
  // memcached port and/or the brick's GlusterFS port, plus scheduled
  // crash/restart windows on either tier. Inert when inactive (default).
  net::FaultPlan faults;
};

class GlusterTestbed {
 public:
  explicit GlusterTestbed(GlusterTestbedConfig cfg);

  sim::EventLoop& loop() noexcept { return loop_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  std::size_t n_clients() const noexcept { return clients_.size(); }
  fsapi::FileSystemClient& client(std::size_t i) { return *clients_.at(i); }
  // The same mount, concretely typed (protocol/client stats + health view).
  gluster::GlusterClient& gluster_client(std::size_t i) {
    return *clients_.at(i);
  }
  // The first brick — the whole tier on classic 1x1 deployments.
  gluster::GlusterServer& server() noexcept { return *servers_.front(); }
  // Brick grid views (row-major: group g, replica r at g*replicas + r).
  gluster::GlusterServer& brick(std::size_t i) { return *servers_.at(i); }
  std::size_t n_brick_servers() const noexcept { return servers_.size(); }
  // Aggregate brick counters (duplicate_applies et al. summed grid-wide).
  gluster::GlusterServerStats server_totals() const;
  bool imca_enabled() const noexcept { return !mcds_.empty(); }
  // The first brick's SMCache — the only one on 1x1 deployments.
  core::SmCacheXlator* smcache() noexcept {
    return smcaches_.empty() ? nullptr : smcaches_.front();
  }
  // Settle every brick's SMCache publish worker (grid-aware quiesce).
  sim::Task<void> quiesce_smcaches() {
    for (core::SmCacheXlator* sm : smcaches_) co_await sm->quiesce();
  }
  core::CmCacheXlator& cmcache(std::size_t i) { return *cmcaches_.at(i); }
  // Barrier every client's write-back tier (no-op when write-back is off).
  // Outcomes are deliberately ignored: a path whose extents were *lost* (all
  // dirty replicas died) still drains — the loss lands in writeback_losses().
  sim::Task<void> sync_writebacks() {
    for (core::CmCacheXlator* cm : cmcaches_) {
      if (cm->writeback() != nullptr) {
        (void)co_await cm->writeback()->sync_all();
      }
    }
  }
  // Aggregate write-back counters / accounted losses across every client.
  core::WritebackStats writeback_totals();
  std::vector<core::WbLostExtent> writeback_losses();
  memcache::McServer& mcd(std::size_t i) { return *mcds_.at(i); }
  std::size_t n_mcds() const noexcept { return mcds_.size(); }
  net::RpcSystem& rpc() noexcept { return rpc_; }
  // Null unless the config carried an active fault plan.
  const net::FaultInjector* fault_injector() const noexcept {
    return injector_.get();
  }

  // Aggregate MCD counters (the paper reads these for miss-rate claims).
  memcache::CacheStats mcd_totals() const;

  // Convenience: run one task to completion on the loop.
  void run(sim::Task<void> task) {
    loop_.spawn(std::move(task));
    loop_.run();
  }

 private:
  GlusterTestbedConfig cfg_;
  sim::EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::vector<net::NodeId> mcd_nodes_;
  std::vector<std::unique_ptr<memcache::McServer>> mcds_;
  std::vector<net::NodeId> brick_nodes_;
  std::vector<std::unique_ptr<gluster::GlusterServer>> servers_;
  std::vector<core::SmCacheXlator*> smcaches_;
  std::vector<std::unique_ptr<gluster::GlusterClient>> clients_;
  std::vector<core::CmCacheXlator*> cmcaches_;
};

struct LustreTestbedConfig {
  std::size_t n_clients = 1;
  std::size_t n_ds = 1;  // the paper's 1DS / 4DS
  net::TransportParams transport = net::ipoib_rc();
  lustre::DsParams ds;
  lustre::MdsParams mds;
  lustre::LustreClientParams client;
};

class LustreTestbed {
 public:
  explicit LustreTestbed(LustreTestbedConfig cfg);

  sim::EventLoop& loop() noexcept { return loop_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  net::RpcSystem& rpc() noexcept { return rpc_; }
  std::size_t n_clients() const noexcept { return clients_.size(); }
  lustre::LustreClient& client(std::size_t i) { return *clients_.at(i); }
  // The fabric node a client runs on (for stacking extra services there).
  net::NodeId client_node(std::size_t i) const { return client_nodes_.at(i); }
  lustre::MetadataServer& mds() noexcept { return *mds_; }
  lustre::DataServer& ds(std::size_t i) { return *ds_.at(i); }

  // The paper's cold-cache methodology: unmount/remount every client.
  void cold_all() {
    for (auto& c : clients_) c->cold();
  }

  void run(sim::Task<void> task) {
    loop_.spawn(std::move(task));
    loop_.run();
  }

 private:
  LustreTestbedConfig cfg_;
  sim::EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::unique_ptr<lustre::MetadataServer> mds_;
  std::vector<std::unique_ptr<lustre::DataServer>> ds_;
  std::vector<std::unique_ptr<lustre::LustreClient>> clients_;
  std::vector<net::NodeId> client_nodes_;
};

struct NfsTestbedConfig {
  std::size_t n_clients = 1;
  net::TransportParams transport = net::ipoib_rc();
  nfs::NfsServerParams server;
};

class NfsTestbed {
 public:
  explicit NfsTestbed(NfsTestbedConfig cfg);

  sim::EventLoop& loop() noexcept { return loop_; }
  std::size_t n_clients() const noexcept { return clients_.size(); }
  nfs::NfsClient& client(std::size_t i) { return *clients_.at(i); }
  nfs::NfsServer& server() noexcept { return *server_; }

  void run(sim::Task<void> task) {
    loop_.spawn(std::move(task));
    loop_.run();
  }

 private:
  NfsTestbedConfig cfg_;
  sim::EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::unique_ptr<nfs::NfsServer> server_;
  std::vector<std::unique_ptr<nfs::NfsClient>> clients_;
};

}  // namespace imca::cluster
