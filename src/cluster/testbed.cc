#include "cluster/testbed.h"

namespace imca::cluster {

GlusterTestbed::GlusterTestbed(GlusterTestbedConfig cfg)
    : cfg_(std::move(cfg)), fabric_(loop_, cfg_.transport), rpc_(fabric_) {
  const std::size_t replicas = cfg_.n_replicas == 0 ? 1 : cfg_.n_replicas;
  const std::size_t groups = cfg_.n_bricks == 0 ? 1 : cfg_.n_bricks;
  const std::size_t n_servers = groups * replicas;
  for (std::size_t b = 0; b < n_servers; ++b) {
    // The single-server name is kept verbatim so 1x1 deployments reproduce
    // the seed's fabric layout (and its event order) exactly.
    const std::string name =
        n_servers == 1 ? std::string("gluster-server")
                       : "brick" + std::to_string(b / replicas) + "." +
                             std::to_string(b % replicas);
    brick_nodes_.push_back(fabric_.add_node(name, kCoresPerNode).id());
  }

  for (std::size_t i = 0; i < cfg_.n_mcds; ++i) {
    const auto n =
        fabric_.add_node("mcd" + std::to_string(i), kCoresPerNode).id();
    mcd_nodes_.push_back(n);
    mcds_.push_back(
        std::make_unique<memcache::McServer>(rpc_, n, cfg_.mcd_memory));
    mcds_.back()->start();
  }

  if (cfg_.faults.active()) {
    injector_ = std::make_unique<net::FaultInjector>(cfg_.faults.seed);
    if (cfg_.faults.spec.any()) {
      for (const auto n : mcd_nodes_) {
        injector_->set_spec(n, net::kPortMemcached, cfg_.faults.spec);
      }
    }
    if (cfg_.faults.server_spec.any()) {
      for (const auto n : brick_nodes_) {
        injector_->set_spec(n, net::kPortGluster, cfg_.faults.server_spec);
      }
    }
    rpc_.set_fault_injector(injector_.get());
    for (const auto& crash : cfg_.faults.crashes) {
      mcds_.at(crash.mcd)->schedule_crash(crash.at, crash.restart_at);
    }
  }

  for (std::size_t b = 0; b < n_servers; ++b) {
    servers_.push_back(std::make_unique<gluster::GlusterServer>(
        rpc_, brick_nodes_[b], cfg_.server));
    if (!mcds_.empty() && cfg_.smcache) {
      core::ImcaConfig icfg = cfg_.imca;
      // With K > 1 this brick is one replica of a group and may be stale
      // after a crash: switch its write hook to the replica-safe publish
      // protocol (payload-covered blocks only, invalidate the rest).
      icfg.replica_bricks = replicas > 1;
      auto sm = std::make_unique<core::SmCacheXlator>(
          loop_,
          std::make_unique<mcclient::McClient>(
              rpc_, brick_nodes_[b], mcd_nodes_, core::make_selector(icfg),
              core::make_mcclient_params(icfg, core::McRole::kWriter)),
          icfg);
      smcaches_.push_back(sm.get());
      servers_.back()->push_translator(std::move(sm));
    }
    servers_.back()->start();
  }
  // Brick crash windows are scheduled after start(): crash() is a no-op on
  // a brick that is not up. Each event names its brick in the grid.
  for (const auto& crash : cfg_.faults.server_crashes) {
    servers_.at(crash.brick)->schedule_crash(crash.at, crash.restart_at);
  }

  for (std::size_t c = 0; c < cfg_.n_clients; ++c) {
    const auto n =
        fabric_.add_node("client" + std::to_string(c), kCoresPerNode).id();
    if (n_servers == 1) {
      clients_.push_back(std::make_unique<gluster::GlusterClient>(
          rpc_, n, brick_nodes_.front(), cfg_.client));
    } else {
      gluster::GlusterTopology topo;
      topo.bricks = brick_nodes_;
      topo.replicas = replicas;
      clients_.push_back(std::make_unique<gluster::GlusterClient>(
          rpc_, n, topo, cfg_.client));
    }
    if (!mcds_.empty()) {
      auto cm = std::make_unique<core::CmCacheXlator>(
          std::make_unique<mcclient::McClient>(
              rpc_, n, mcd_nodes_, core::make_selector(cfg_.imca),
              core::make_mcclient_params(cfg_.imca, core::McRole::kReader)),
          cfg_.imca);
      // Brownout: this mount's CMCache watches its own mount's view of the
      // brick tier's health (the PC, or the cluster xlator on a grid).
      cm->set_server_health(&clients_.back()->health());
      if (cfg_.imca.writeback) {
        // Durable write-back (DESIGN.md §5j): a writer-role connection set
        // of its own — dirty payloads must survive rejoin purges and their
        // mutations must reach clean outcomes. writer_id is the fabric node
        // id: unique per client by construction.
        cm->set_writeback(std::make_unique<core::WritebackTier>(
            std::make_unique<mcclient::McClient>(
                rpc_, n, mcd_nodes_, core::make_selector(cfg_.imca),
                core::make_mcclient_params(cfg_.imca, core::McRole::kWriter)),
            static_cast<std::uint64_t>(n), cfg_.imca));
      }
      cmcaches_.push_back(cm.get());
      clients_.back()->push_translator(std::move(cm));
    }
  }
}

gluster::GlusterServerStats GlusterTestbed::server_totals() const {
  gluster::GlusterServerStats total;
  for (const auto& s : servers_) {
    const auto st = s->stats();
    total.fops += st.fops;
    total.sheds_admission += st.sheds_admission;
    total.sheds_expired += st.sheds_expired;
    total.sheds_io += st.sheds_io;
    total.replays_seen += st.replays_seen;
    total.replays_deduped += st.replays_deduped;
    total.replays_parked += st.replays_parked;
    total.duplicate_applies += st.duplicate_applies;
    total.crashes += st.crashes;
    total.restarts += st.restarts;
    total.wb_dropped_bytes += st.wb_dropped_bytes;
    total.replies_lost_in_crash += st.replies_lost_in_crash;
  }
  return total;
}

core::WritebackStats GlusterTestbed::writeback_totals() {
  core::WritebackStats total;
  for (core::CmCacheXlator* cm : cmcaches_) {
    const core::WritebackTier* wb = cm->writeback();
    if (wb == nullptr) continue;
    const auto& s = wb->stats();
    total.absorbed += s.absorbed;
    total.absorbed_bytes += s.absorbed_bytes;
    total.degraded_writes += s.degraded_writes;
    total.backpressure_sheds += s.backpressure_sheds;
    total.rollbacks += s.rollbacks;
    total.flushed_extents += s.flushed_extents;
    total.flushed_bytes += s.flushed_bytes;
    total.flush_retries += s.flush_retries;
    total.flush_requeues += s.flush_requeues;
    total.lost_extents += s.lost_extents;
    total.lost_bytes += s.lost_bytes;
    total.cas_conflicts += s.cas_conflicts;
    total.index_reinstalls += s.index_reinstalls;
    total.barrier_timeouts += s.barrier_timeouts;
    total.overlay_reads += s.overlay_reads;
    total.overlay_stats += s.overlay_stats;
    total.replica_drops += s.replica_drops;
  }
  return total;
}

std::vector<core::WbLostExtent> GlusterTestbed::writeback_losses() {
  std::vector<core::WbLostExtent> all;
  for (core::CmCacheXlator* cm : cmcaches_) {
    const core::WritebackTier* wb = cm->writeback();
    if (wb == nullptr) continue;
    all.insert(all.end(), wb->lost().begin(), wb->lost().end());
  }
  return all;
}

memcache::CacheStats GlusterTestbed::mcd_totals() const {
  memcache::CacheStats total;
  for (const auto& m : mcds_) {
    const auto& s = m->cache().stats();
    total.cmd_get += s.cmd_get;
    total.cmd_set += s.cmd_set;
    total.get_hits += s.get_hits;
    total.get_misses += s.get_misses;
    total.evictions += s.evictions;
    total.expired_unfetched += s.expired_unfetched;
    total.curr_items += s.curr_items;
    total.bytes += s.bytes;
  }
  return total;
}

LustreTestbed::LustreTestbed(LustreTestbedConfig cfg)
    : cfg_(std::move(cfg)), fabric_(loop_, cfg_.transport), rpc_(fabric_) {
  const auto mds_node = fabric_.add_node("mds", kCoresPerNode).id();
  mds_ = std::make_unique<lustre::MetadataServer>(rpc_, mds_node, cfg_.mds);

  std::vector<lustre::DataServer*> ds_ptrs;
  for (std::size_t i = 0; i < cfg_.n_ds; ++i) {
    const auto n = fabric_.add_node("ost" + std::to_string(i), kCoresPerNode).id();
    ds_.push_back(std::make_unique<lustre::DataServer>(rpc_, n, cfg_.ds));
    ds_ptrs.push_back(ds_.back().get());
  }

  for (std::size_t c = 0; c < cfg_.n_clients; ++c) {
    const auto n =
        fabric_.add_node("lclient" + std::to_string(c), kCoresPerNode).id();
    client_nodes_.push_back(n);
    clients_.push_back(std::make_unique<lustre::LustreClient>(
        rpc_, n, *mds_, ds_ptrs, cfg_.client));
  }
}

NfsTestbed::NfsTestbed(NfsTestbedConfig cfg)
    : cfg_(std::move(cfg)), fabric_(loop_, cfg_.transport), rpc_(fabric_) {
  const auto server_node = fabric_.add_node("nfs-server", kCoresPerNode).id();
  server_ = std::make_unique<nfs::NfsServer>(rpc_, server_node, cfg_.server);
  for (std::size_t c = 0; c < cfg_.n_clients; ++c) {
    const auto n =
        fabric_.add_node("nclient" + std::to_string(c), kCoresPerNode).id();
    clients_.push_back(std::make_unique<nfs::NfsClient>(rpc_, n, *server_));
  }
}

}  // namespace imca::cluster
