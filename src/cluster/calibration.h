// Central record of the calibration constants behind every experiment.
//
// The paper's testbed (§5.1): 64 nodes, 8-core Intel Clovertown, 8 GB RAM,
// InfiniBand DDR HCAs, IPoIB(RC) transport everywhere, one GlusterFS server
// with an 8-disk HighPoint RAID, MCDs capped at 6 GB, Lustre 1.6.4.3 with a
// separate MDS. The per-component service times live in each module's params
// struct; this header documents where the defaults come from and offers a
// one-call banner so every bench prints the constants it ran with.
//
// Sources for the defaults (2008-era measurements on comparable hardware):
//   * IPoIB-RC on DDR: ~25-30 us small-message RTT, 900-1000 MB/s streams.
//   * Native IB verbs: ~6 us RTT, 1.4+ GB/s.
//   * GigE/TCP: ~50-60 us RTT, ~117 MB/s.
//   * 7200 rpm SATA: ~8 ms avg seek, ~4 ms half rotation, ~70 MB/s media.
//   * FUSE null-op crossing: ~15-20 us round trip.
//   * memcached get/set service: single-digit microseconds plus memcpy.
#pragma once

#include <cstdio>

#include "gluster/client.h"
#include "gluster/server.h"
#include "lustre/client.h"
#include "lustre/data_server.h"
#include "lustre/mds.h"
#include "memcache/server.h"
#include "net/transport.h"
#include "nfs/nfs.h"

namespace imca::cluster {

// The paper's node: 8-core Clovertown.
inline constexpr std::size_t kCoresPerNode = 8;
// MCD daemons may use up to 6 GB (paper §5.1).
inline constexpr std::uint64_t kMcdMemoryBytes = 6 * kGiB;

// Print the key constants a bench ran with (goes above each table so
// EXPERIMENTS.md entries are self-describing).
inline void print_calibration_banner(const net::TransportParams& t) {
  std::printf(
      "# transport=%s wire=%.1fus bw=%.0fMB/s cpu/msg=%.1f/%.1fus | "
      "disk: seek=8ms rot=4ms media=100MB/s | fuse=14us/op "
      "gluster-dispatch=110us posix-meta=120us mcd-service=3us+3us/key\n",
      t.name.c_str(), to_micros(t.wire_latency),
      static_cast<double>(t.bandwidth_bps) / static_cast<double>(kMiB),
      to_micros(t.send_cpu_per_msg), to_micros(t.recv_cpu_per_msg));
}

}  // namespace imca::cluster
