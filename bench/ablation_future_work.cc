// Ablations for the paper's §7 future-work directions, implemented in this
// repository:
//
//  (1) RDMA to the cache bank — "how network mechanisms like RDMA in
//      InfiniBand can help reduce the overhead of the cache bank": rerun the
//      Fig 7 read-latency point and the Fig 5 stat point with the MCD path
//      on native verbs instead of TCP over IPoIB.
//  (2) Hash schemes — "investigate different hashing algorithms": CRC32 vs
//      modulo vs consistent hashing, including the remap cost when a daemon
//      is removed (what consistent hashing exists to fix).
//  (3) Coherent client cache vs the cache bank — "study the relative
//      scalability of a coherent client side cache and a bank of
//      intermediate cache nodes": sweep node count under read/write sharing
//      (one rotating writer per round) for Lustre's coherent client caches
//      and for IMCa's bank.
//  (4) Bank-in-Lustre — "how the set of cache servers may be integrated
//      into a file system such as Lustre": plain Lustre vs CachedLustreClient
//      on a shared-read workload.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "lustre/cached_client.h"
#include "workload/latency_bench.h"
#include "workload/stat_bench.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;

// --- (1) RDMA cache path ---

void rdma_ablation(const BenchArgs& args) {
  std::printf("\n-- (1) cache-bank transport: TCP/IPoIB vs native RDMA --\n");
  auto read_1b = [](bool rdma) {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 32;
    cfg.n_mcds = 4;
    cfg.imca.rdma_cache_path = rdma;
    GlusterTestbed tb(cfg);
    workload::LatencyOptions opt;
    opt.max_record = 4 * kKiB;
    opt.records_per_size = 64;
    opt.record_multiplier = 64;  // 1B and 64B and 4K
    return workload::run_latency_benchmark(tb.loop(), clients_of(tb), opt);
  };
  auto stat_64c = [](bool rdma) {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 64;
    cfg.n_mcds = 4;
    cfg.imca.rdma_cache_path = rdma;
    GlusterTestbed tb(cfg);
    workload::StatOptions opt;
    opt.n_files = 4096;
    return workload::run_stat_benchmark(tb.loop(), clients_of(tb), opt)
        .max_node_seconds;
  };

  // Uncontended probe: one client, one daemon, a cached 1-byte read.
  auto uncontended_1b = [](bool rdma) {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 1;
    cfg.n_mcds = 1;
    cfg.imca.rdma_cache_path = rdma;
    GlusterTestbed tb(cfg);
    SimDuration lat = 0;
    tb.run([](GlusterTestbed& t, SimDuration& out_lat) -> sim::Task<void> {
      auto f = co_await t.client(0).create("/probe");
      (void)co_await t.client(0).write(*f, 0, to_buffer("xy"));
      const SimTime t0 = t.loop().now();
      (void)co_await t.client(0).read(*f, 0, 1);
      out_lat = t.loop().now() - t0;
    }(tb, lat));
    return static_cast<double>(lat);
  };

  const double tcp_1 = uncontended_1b(false);
  const double rdma_1 = uncontended_1b(true);
  const auto tcp = read_1b(false);
  const auto rdma = read_1b(true);
  const double tcp_stat = stat_64c(false);
  const double rdma_stat = stat_64c(true);

  Table t({"metric", "TCP/IPoIB", "RDMA", "reduction"});
  t.add_row({"1B cached read, 1 client/1MCD (us)", Table::cell(tcp_1 / 1e3),
             Table::cell(rdma_1 / 1e3), pct_reduction(tcp_1, rdma_1)});
  t.add_row({"1B read, 32 clients/4MCD (us)",
             Table::cell(tcp.read_ns.at(1) / 1e3),
             Table::cell(rdma.read_ns.at(1) / 1e3),
             pct_reduction(tcp.read_ns.at(1), rdma.read_ns.at(1))});
  t.add_row({"4K read, 32 clients/4MCD (us)",
             Table::cell(tcp.read_ns.at(4 * kKiB) / 1e3),
             Table::cell(rdma.read_ns.at(4 * kKiB) / 1e3),
             pct_reduction(tcp.read_ns.at(4 * kKiB),
                           rdma.read_ns.at(4 * kKiB))});
  t.add_row({"stat storm, 64 clients/4MCD (s)", Table::cell(tcp_stat, 3),
             Table::cell(rdma_stat, 3), pct_reduction(tcp_stat, rdma_stat)});
  print_table(t, args);
  std::printf("# RDMA halves the uncontended round trip; under saturation"
              " the single-threaded daemon, not the transport, bounds"
              " latency — the case for a verbs-native daemon design.\n");
}

// --- (2) hashing schemes: balance and remap cost ---

void hash_ablation(const BenchArgs& args) {
  std::printf("\n-- (2) key->daemon hashing: balance and daemon-loss remap --\n");
  const std::size_t kDaemons = 6;
  const int kKeys = 20000;
  mcclient::Crc32Selector crc;
  mcclient::ModuloSelector modulo;
  mcclient::ConsistentSelector consistent(16);

  Table t({"scheme", "max/mean load (6 daemons)", "keys remapped 6->5"});
  const auto row = [&](const char* name, const mcclient::ServerSelector& sel,
                       bool hint) {
    std::vector<int> load(kDaemons, 0);
    int moved = 0;
    for (int i = 0; i < kKeys; ++i) {
      const std::string key =
          "/vol/data/file" + std::to_string(i % 500) + ":" +
          std::to_string((i / 500) * 2048);
      const auto h = hint ? std::optional<std::uint64_t>{
                                static_cast<std::uint64_t>(i / 500)}
                          : std::nullopt;
      const auto s6 = sel.pick(key, h, kDaemons);
      ++load[s6];
      moved += s6 != sel.pick(key, h, kDaemons - 1);
    }
    const double mean = static_cast<double>(kKeys) / kDaemons;
    const int mx = *std::max_element(load.begin(), load.end());
    t.add_row({name, Table::cell(mx / mean),
               Table::cell(100.0 * moved / kKeys, 1) + "%"});
  };
  row("crc32", crc, false);
  row("modulo", modulo, true);
  row("consistent", consistent, false);
  print_table(t, args);
}

// --- (3) coherent client cache vs the bank, under r/w sharing ---

// Per round: one rotating writer updates the shared file's first 4K, then
// every node reads it. Returns mean read latency (ns).
template <typename MakeClients>
double sharing_latency(sim::EventLoop& loop,
                       std::vector<fsapi::FileSystemClient*> clients,
                       std::size_t rounds, MakeClients&& /*tag*/) {
  MeanAccum reads;
  loop.spawn([](sim::EventLoop& l, std::vector<fsapi::FileSystemClient*> cs,
                std::size_t n_rounds, MeanAccum& acc) -> sim::Task<void> {
    auto f0 = co_await cs[0]->create("/abl/shared");
    std::vector<fsapi::OpenFile> fds(cs.size());
    fds[0] = *f0;
    (void)co_await cs[0]->write(fds[0], 0, Buffer::zeros(4 * kKiB));
    for (std::size_t c = 1; c < cs.size(); ++c) {
      fds[c] = *(co_await cs[c]->open("/abl/shared"));
    }
    for (std::size_t round = 0; round < n_rounds; ++round) {
      const std::size_t writer = round % cs.size();
      (void)co_await cs[writer]->write(
          fds[writer], 0,
          Buffer::take(std::vector<std::byte>(
              4 * kKiB, static_cast<std::byte>(round & 0xFF))));
      for (std::size_t c = 0; c < cs.size(); ++c) {
        const SimTime t0 = l.now();
        auto r = co_await cs[c]->read(fds[c], 0, 4 * kKiB);
        (void)r;
        acc.add(static_cast<double>(l.now() - t0));
      }
    }
  }(loop, std::move(clients), rounds, reads));
  loop.run();
  return reads.mean();
}

void scalability_ablation(const BenchArgs& args) {
  std::printf("\n-- (3) coherent client caches (Lustre) vs cache bank (IMCa),"
              " r/w sharing, rotating writer --\n");
  Table t({"nodes", "Lustre coherent-cache (us)", "IMCa 2-MCD bank (us)",
           "MDS revocations"});
  for (const std::size_t nodes : {2u, 8u, 16u, 32u}) {
    LustreTestbedConfig lcfg;
    lcfg.n_clients = nodes;
    lcfg.n_ds = 2;
    LustreTestbed ltb(lcfg);
    const double lustre =
        sharing_latency(ltb.loop(), clients_of(ltb), 16, 0);
    const auto revocations = ltb.mds().revocations();

    GlusterTestbedConfig gcfg;
    gcfg.n_clients = nodes;
    gcfg.n_mcds = 2;
    GlusterTestbed gtb(gcfg);
    const double imca =
        sharing_latency(gtb.loop(), clients_of(gtb), 16, 0);

    t.add_row({Table::cell(static_cast<std::uint64_t>(nodes)),
               Table::cell(lustre / 1e3), Table::cell(imca / 1e3),
               Table::cell(static_cast<std::uint64_t>(revocations))});
  }
  print_table(t, args);
  std::printf("# the coherent cache pays one revocation storm per write"
              " (growing with nodes); the lockless bank pays a flat"
              " republish.\n");
}

// --- (4) the bank integrated into Lustre ---

void lustre_bank_ablation(const BenchArgs& args) {
  std::printf("\n-- (4) cache bank integrated into Lustre"
              " (CachedLustreClient) --\n");
  const std::size_t kNodes = 16;

  auto run = [&](bool with_bank) {
    LustreTestbedConfig cfg;
    cfg.n_clients = kNodes;
    cfg.n_ds = 1;
    LustreTestbed tb(cfg);
    // Cold coherent caches: the scenario where the bank should help most.
    for (std::size_t c = 0; c < kNodes; ++c) tb.client(c).cold();

    std::vector<net::NodeId> mcd_nodes;
    std::vector<std::unique_ptr<memcache::McServer>> mcds;
    std::vector<std::unique_ptr<lustre::CachedLustreClient>> cached;
    std::vector<fsapi::FileSystemClient*> clients;
    if (with_bank) {
      // Two MCD nodes appended to the same fabric.
      for (int i = 0; i < 2; ++i) {
        // NOTE: testbed fabrics allow adding nodes after construction.
        auto& node = tb.fabric().add_node("mcd" + std::to_string(i));
        mcd_nodes.push_back(node.id());
        mcds.push_back(std::make_unique<memcache::McServer>(
            tb.rpc(), node.id(), 1 * kGiB));
        mcds.back()->start();
      }
      for (std::size_t c = 0; c < kNodes; ++c) {
        cached.push_back(std::make_unique<lustre::CachedLustreClient>(
            tb.client(c),
            std::make_unique<mcclient::McClient>(
                tb.rpc(), tb.client_node(c), mcd_nodes,
                std::make_unique<mcclient::Crc32Selector>())));
        clients.push_back(cached.back().get());
      }
    } else {
      clients = clients_of(tb);
    }

    // Shared-read workload against a disk-pressured DS: writer 0 seeds the
    // file, the DS page cache is dropped, then every reader streams the file
    // CONCURRENTLY — the load profile where an extra caching tier should
    // matter (paper §3 "Server load problems").
    MeanAccum reads;
    tb.loop().spawn([](sim::EventLoop& l, LustreTestbed& lt,
                       std::vector<fsapi::FileSystemClient*> cs,
                       MeanAccum& acc) -> sim::Task<void> {
      auto f0 = co_await cs[0]->create("/bank/data");
      (void)co_await cs[0]->write(*f0, 0, Buffer::zeros(64 * kKiB));
      lt.ds(0).device().drop_caches();
      std::vector<sim::Task<void>> readers;
      for (std::size_t c = 1; c < cs.size(); ++c) {
        readers.push_back([](sim::EventLoop& ll, fsapi::FileSystemClient& fs,
                             MeanAccum& a) -> sim::Task<void> {
          auto f = co_await fs.open("/bank/data");
          for (int pass = 0; pass < 2; ++pass) {
            for (std::uint64_t off = 0; off < 64 * kKiB; off += 4 * kKiB) {
              const SimTime t0 = ll.now();
              (void)co_await fs.read(*f, off, 4 * kKiB);
              a.add(static_cast<double>(ll.now() - t0));
            }
          }
        }(l, *cs[c], acc));
      }
      co_await sim::when_all(l, std::move(readers));
    }(tb.loop(), tb, std::move(clients), reads));
    tb.loop().run();
    return reads.mean();
  };

  const double plain = run(false);
  const double banked = run(true);
  Table t({"config", "mean 4K shared read (us)"});
  t.add_row({"Lustre-1DS (cold client caches)", Table::cell(plain / 1e3)});
  t.add_row({"Lustre-1DS + 2-MCD bank", Table::cell(banked / 1e3)});
  print_table(t, args);
  std::printf("# reduction from the integrated bank: %s\n",
              pct_reduction(plain, banked).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("== Ablations: the paper's future-work directions (§7) ==\n");
  cluster::print_calibration_banner(net::ipoib_rc());
  rdma_ablation(args);
  hash_ablation(args);
  scalability_ablation(args);
  lustre_bank_ablation(args);
  return 0;
}
