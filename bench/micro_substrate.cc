// Micro-benchmarks (google-benchmark) for the substrate hot paths: CRC32 and
// selector hashing, block-span computation, the memcached engine, the slab
// allocator and the DES kernel. These measure *host* performance of the
// simulator's building blocks, not simulated time.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/crc32.h"
#include "imca/block_mapper.h"
#include "imca/keys.h"
#include "mcclient/selector.h"
#include "memcache/cache.h"
#include "sim/event_loop.h"
#include "sim/sync.h"

namespace {

using namespace imca;

void BM_Crc32(benchmark::State& state) {
  const std::string key(static_cast<std::size_t>(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(std::string_view(key)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(16)->Arg(64)->Arg(2048);

void BM_LibmemcacheSelector(benchmark::State& state) {
  mcclient::Crc32Selector sel;
  std::uint64_t block = 0;
  for (auto _ : state) {
    const auto key = core::data_key("/data/some/file", block * 2048);
    benchmark::DoNotOptimize(sel.pick(key, block, 4));
    ++block;
  }
}
BENCHMARK(BM_LibmemcacheSelector);

void BM_ConsistentSelector(benchmark::State& state) {
  mcclient::ConsistentSelector sel(16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sel.pick("/data/file" + std::to_string(i++ & 1023), std::nullopt, 6));
  }
}
BENCHMARK(BM_ConsistentSelector);

void BM_BlockCovering(benchmark::State& state) {
  const core::BlockMapper mapper(2048);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.covering(offset, static_cast<std::uint64_t>(state.range(0))));
    offset += 4097;
  }
}
BENCHMARK(BM_BlockCovering)->Arg(2048)->Arg(65536);

void BM_McCacheSetGet(benchmark::State& state) {
  memcache::McCache cache(256 * kMiB);
  const Buffer value = Buffer::take(std::vector<std::byte>(
      static_cast<std::size_t>(state.range(0)), std::byte{7}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(i & 4095);
    (void)cache.set(key, 0, 0, value, i);
    benchmark::DoNotOptimize(cache.get(key, i));
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_McCacheSetGet)->Arg(128)->Arg(2048)->Arg(65536);

void BM_McCacheLruChurn(benchmark::State& state) {
  // Cache sized to hold ~1000 items of this class: constant eviction.
  memcache::McCache cache(2 * kMiB);
  const Buffer value =
      Buffer::take(std::vector<std::byte>(2000, std::byte{1}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)cache.set("churn" + std::to_string(i), 0, 0, value, i);
    ++i;
  }
  state.counters["evictions"] =
      static_cast<double>(cache.stats().evictions);
}
BENCHMARK(BM_McCacheLruChurn);

void BM_EventLoopSpawnResume(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.spawn([](sim::EventLoop& l) -> sim::Task<void> {
        co_await l.sleep(1);
        co_await l.sleep(1);
      }(loop));
    }
    loop.run();
    benchmark::DoNotOptimize(loop.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          3000);  // spawn + 2 sleeps each
}
BENCHMARK(BM_EventLoopSpawnResume);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    sim::Channel<int> ping(loop), pong(loop);
    loop.spawn([](sim::Channel<int>& in, sim::Channel<int>& out)
                   -> sim::Task<void> {
      for (int i = 0; i < 1000; ++i) {
        out.send(co_await in.recv());
      }
    }(ping, pong));
    loop.spawn([](sim::Channel<int>& out, sim::Channel<int>& in)
                   -> sim::Task<void> {
      for (int i = 0; i < 1000; ++i) {
        out.send(i);
        (void)co_await in.recv();
      }
    }(ping, pong));
    loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
}
BENCHMARK(BM_ChannelPingPong);

}  // namespace

BENCHMARK_MAIN();
