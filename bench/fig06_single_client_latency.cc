// Figure 6 — Read and write latency with one client and 1 MCD (paper §5.3).
//
// (a)/(b): read latency vs record size for IMCa block sizes 256 B / 2 KB /
// 8 KB against NoCache and Lustre (1 and 4 data servers, warm and cold
// client cache). Paper headlines at a 1-byte record: 45% reduction with a
// 2 KB block, 31% with 8 KB, 59% with 256 B; NoCache wins past ~8 KB records
// against the 256 B block; Lustre warm is lowest overall, Lustre cold sits
// near IMCa.
//
// (c): write latency with a 2 KB block. IMCa's synchronous MCD update (a
// server-side read-back in the write path) makes writes slower than
// NoCache; offloading to the update thread restores parity.
#include <cstdio>

#include "bench_util.h"
#include "workload/latency_bench.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;
using workload::LatencyOptions;
using workload::LatencySeries;

LatencyOptions base_options() {
  LatencyOptions opt;
  opt.min_record = 1;
  opt.max_record = 256 * kKiB;
  opt.records_per_size = 128;
  return opt;
}

LatencySeries run_gluster(std::size_t n_mcds, std::uint64_t block_size,
                          bool threaded) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = n_mcds;
  cfg.imca.block_size = block_size;
  cfg.imca.threaded_updates = threaded;
  GlusterTestbed tb(cfg);
  return workload::run_latency_benchmark(tb.loop(), clients_of(tb),
                                         base_options());
}

LatencySeries run_lustre(std::size_t n_ds, bool cold) {
  LustreTestbedConfig cfg;
  // llite's max_cached_mb (32 MB per OSC in Lustre 1.6), scaled 1/8 with the
  // file sizes: the reason the paper's Warm curve loses to IMCa once the
  // per-size sweep outgrows the client cache.
  cfg.client.cache_bytes = 4 * kMiB;
  cfg.n_clients = 1;
  cfg.n_ds = n_ds;
  LustreTestbed tb(cfg);
  auto opt = base_options();
  if (cold) {
    // Paper §5.3: after the write phase the client file system is unmounted
    // and remounted, evicting the client cache.
    opt.before_read_phase = [&tb](std::size_t) { tb.cold_all(); };
  }
  return workload::run_latency_benchmark(tb.loop(), clients_of(tb), opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("== Fig 6: single-client latency, 1 MCD "
              "(128 records/size; paper: 1024) ==\n");
  cluster::print_calibration_banner(net::ipoib_rc());

  const auto nocache = run_gluster(0, 2 * kKiB, false);
  const auto imca256 = run_gluster(1, 256, false);
  const auto imca2k = run_gluster(1, 2 * kKiB, false);
  const auto imca8k = run_gluster(1, 8 * kKiB, false);
  const auto lustre1_cold = run_lustre(1, true);
  const auto lustre4_cold = run_lustre(4, true);
  const auto lustre4_warm = run_lustre(4, false);
  const auto imca2k_threaded = run_gluster(1, 2 * kKiB, true);

  std::printf("\n-- Fig 6(a,b): Read latency (us) vs record size --\n");
  Table read_table({"record", "NoCache", "IMCa-256", "IMCa-2K", "IMCa-8K",
                    "Lustre-1DS(Cold)", "Lustre-4DS(Cold)",
                    "Lustre-4DS(Warm)"});
  for (const auto& [r, nc] : nocache.read_ns) {
    read_table.add_row({Table::cell(r),
                        Table::cell(nc / 1e3),
                        Table::cell(imca256.read_ns.at(r) / 1e3),
                        Table::cell(imca2k.read_ns.at(r) / 1e3),
                        Table::cell(imca8k.read_ns.at(r) / 1e3),
                        Table::cell(lustre1_cold.read_ns.at(r) / 1e3),
                        Table::cell(lustre4_cold.read_ns.at(r) / 1e3),
                        Table::cell(lustre4_warm.read_ns.at(r) / 1e3)});
  }
  print_table(read_table, args);

  const double nc1 = nocache.read_ns.at(1);
  std::printf("\n# paper: 1-byte read reduction vs NoCache: 59%% (256B block),"
              " 45%% (2K), 31%% (8K)\n");
  std::printf("# measured:                                %s (256B block),"
              " %s (2K), %s (8K)\n",
              pct_reduction(nc1, imca256.read_ns.at(1)).c_str(),
              pct_reduction(nc1, imca2k.read_ns.at(1)).c_str(),
              pct_reduction(nc1, imca8k.read_ns.at(1)).c_str());
  // Crossover: beyond ~8K records the 256B block loses to NoCache.
  for (std::uint64_t r = 1; r <= 256 * kKiB; r *= 2) {
    if (imca256.read_ns.at(r) > nocache.read_ns.at(r)) {
      std::printf("# paper: NoCache beats IMCa-256 past 8K records; measured"
                  " crossover at %llu bytes\n",
                  static_cast<unsigned long long>(r));
      break;
    }
  }

  std::printf("\n-- Fig 6(c): Write latency (us), IMCa block 2K --\n");
  Table write_table(
      {"record", "NoCache", "IMCa-2K(sync)", "IMCa-2K(threaded)"});
  for (const auto& [r, nc] : nocache.write_ns) {
    write_table.add_row({Table::cell(r),
                         Table::cell(nc / 1e3),
                         Table::cell(imca2k.write_ns.at(r) / 1e3),
                         Table::cell(imca2k_threaded.write_ns.at(r) / 1e3)});
  }
  print_table(write_table, args);
  const std::uint64_t wr = 2 * kKiB;
  std::printf("\n# paper: sync IMCa write is slower than NoCache; the update"
              " thread restores parity.\n");
  std::printf("# measured at 2K records: NoCache=%.1fus sync=%.1fus"
              " threaded=%.1fus\n",
              nocache.write_ns.at(wr) / 1e3, imca2k.write_ns.at(wr) / 1e3,
              imca2k_threaded.write_ns.at(wr) / 1e3);
  return 0;
}
