// The IMCa miss penalty, killed: with partial-hit assembly + client-side
// read-repair, a read that finds k of n covering blocks cached is strictly
// cheaper than the paper's forward-on-any-miss behaviour for every k >= 1,
// and a warm re-read after one miss is a full cache hit — without SMCache's
// server-side publish doing the warming.
//
// The paper observes the opposite (§4.4): because CMCache discards every hit
// when any covering block misses, a cold IMCa read costs *more* than plain
// GlusterFS (the wasted multi-get plus the full server read).
//
// Method: one client, a 2-MCD bank, one n-block file fully cached by the
// write path; then exactly n-k tail blocks are evicted straight out of the
// daemons (zero simulated time) and one whole-file read is timed under
//   baseline — cfg.partial_hit_reads = false (the paper's path)
//   partial  — cfg.partial_hit_reads = true  (this repo's path)
// The warm-re-read check runs with SMCache unwired (testbed smcache=false)
// so only client-side read-repair can repopulate the bank.
//
// Output is one JSON object; exit code 0 iff both acceptance claims hold,
// so the bench doubles as a regression test (ctest: miss_penalty_ablation).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/buffer.h"
#include "imca/keys.h"

namespace {

using namespace imca;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;

constexpr std::uint64_t kBlock = 2 * kKiB;
constexpr std::size_t kBlocks = 8;  // file spans 8 blocks = 16 KiB
constexpr const char* kPath = "/abl/file";

GlusterTestbedConfig base_config() {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = 2;
  cfg.imca.block_size = kBlock;
  return cfg;
}

// Drop `path`'s blocks [first, kBlocks) from every daemon, directly (no
// simulated time passes — this models eviction, not traffic).
void evict_tail(GlusterTestbed& tb, std::size_t first) {
  for (std::size_t b = first; b < kBlocks; ++b) {
    const std::string key = core::data_key(kPath, b * kBlock);
    for (std::size_t m = 0; m < tb.n_mcds(); ++m) {
      (void)tb.mcd(m).cache().del(key);
    }
  }
}

struct ReadMeasure {
  double ns = 0;
  std::uint64_t bytes_copied = 0;  // buffer-layer memcpy during the read
  std::uint64_t gather_calls = 0;
};

// Kernel events processed across every testbed in the run — the perf
// trajectory's events/sec denominator (--json, EXPERIMENTS.md).
std::uint64_t g_events = 0;

// Seed the file (the write path publishes every block via SMCache), evict
// the tail so exactly k blocks stay cached, and time one whole-file read.
// The copy ledger is snapshotted around the read (including the window in
// which fire-and-forget read-repairs land), so `bytes_copied` is the full
// data-path cost of serving it. `legacy` flips the pre-refactor
// copy-per-hop buffer behaviour for the ablation.
ReadMeasure timed_read(bool partial_hit, std::size_t k, bool legacy = false) {
  auto cfg = base_config();
  cfg.imca.partial_hit_reads = partial_hit;
  GlusterTestbed tb(cfg);
  ReadMeasure m;
  set_legacy_copy_path(legacy);
  tb.run([](GlusterTestbed& t, std::size_t cached,
            ReadMeasure& out) -> sim::Task<void> {
    auto f = co_await t.client(0).create(kPath);
    (void)co_await t.client(0).write(
        *f, 0, Buffer::zeros(kBlocks * kBlock));
    evict_tail(t, cached);
    const auto before = buffer_stats();
    const SimTime t0 = t.loop().now();
    (void)co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    out.ns = static_cast<double>(t.loop().now() - t0);
    co_await t.loop().sleep(1 * kMilli);  // let repair sets land
    out.bytes_copied = buffer_stats().bytes_copied - before.bytes_copied;
    out.gather_calls = buffer_stats().gather_calls - before.gather_calls;
  }(tb, k, m));
  set_legacy_copy_path(false);
  g_events += tb.loop().events_processed();
  return m;
}

double timed_read_ns(bool partial_hit, std::size_t k) {
  return timed_read(partial_hit, k).ns;
}

struct WarmResult {
  double cold_ns = 0;
  double warm_ns = 0;
  std::uint64_t blocks_repaired = 0;
  std::uint64_t warm_from_cache = 0;  // reads_from_cache delta on the re-read
};

// One evicted block, SMCache unwired: only client read-repair can rewarm the
// bank. The re-read must then be a full cache hit.
WarmResult warm_reread() {
  auto cfg = base_config();
  cfg.smcache = false;
  GlusterTestbed tb(cfg);
  WarmResult r;
  tb.run([](GlusterTestbed& t, WarmResult& out) -> sim::Task<void> {
    auto f = co_await t.client(0).create(kPath);
    (void)co_await t.client(0).write(
        *f, 0, Buffer::zeros(kBlocks * kBlock));
    // No SMCache: the bank is stone cold; the first read misses everywhere,
    // range-fetches once, and repairs all 8 blocks from the client.
    const SimTime t0 = t.loop().now();
    (void)co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    out.cold_ns = static_cast<double>(t.loop().now() - t0);
    // Let the fire-and-forget repair sets land before re-reading.
    co_await t.loop().sleep(1 * kMilli);
    out.blocks_repaired = t.cmcache(0).stats().blocks_repaired;
    const std::uint64_t from_cache_before =
        t.cmcache(0).stats().reads_from_cache;
    const SimTime t1 = t.loop().now();
    (void)co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    out.warm_ns = static_cast<double>(t.loop().now() - t1);
    out.warm_from_cache =
        t.cmcache(0).stats().reads_from_cache - from_cache_before;
  }(tb, r));
  g_events += tb.loop().events_processed();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = imca::bench::parse_args(argc, argv);
  const imca::bench::BenchTimer bench_timer;

  bool strictly_cheaper = true;
  std::printf("{\n  \"file_blocks\": %zu,\n  \"block_bytes\": %llu,\n",
              kBlocks, static_cast<unsigned long long>(kBlock));
  std::printf("  \"sweep\": [\n");
  for (std::size_t k = 0; k <= kBlocks; ++k) {
    const double base = timed_read_ns(false, k);
    const double part = timed_read_ns(true, k);
    // Strict win whenever there is a miss penalty to kill (1 <= k < n); at
    // k = n both paths are a full cache hit and must merely not regress.
    if (k >= 1 && k < kBlocks && !(part < base)) strictly_cheaper = false;
    if (k == kBlocks && part > base) strictly_cheaper = false;
    std::printf("    {\"cached_blocks\": %zu, \"baseline_us\": %.3f,"
                " \"partial_hit_us\": %.3f, \"reduction_pct\": %.1f}%s\n",
                k, base / 1e3, part / 1e3,
                base > 0 ? 100.0 * (base - part) / base : 0.0,
                k == kBlocks ? "" : ",");
  }
  std::printf("  ],\n");

  const WarmResult w = warm_reread();
  const bool warm_is_full_hit =
      w.warm_from_cache == 1 && w.blocks_repaired == kBlocks;
  std::printf("  \"warm_reread\": {\"smcache\": false, \"cold_us\": %.3f,"
              " \"warm_us\": %.3f, \"blocks_repaired\": %llu,"
              " \"full_cache_hit\": %s},\n",
              w.cold_ns / 1e3, w.warm_ns / 1e3,
              static_cast<unsigned long long>(w.blocks_repaired),
              warm_is_full_hit ? "true" : "false");
  // The copy ledger (tentpole metric): bytes the buffer layer memcpy'd per
  // byte the caller read, zero-copy vs the legacy copy-per-hop ablation.
  constexpr double kPayload = static_cast<double>(kBlocks * kBlock);
  const ReadMeasure full = timed_read(true, kBlocks);
  const ReadMeasure half = timed_read(true, kBlocks / 2);
  const ReadMeasure full_legacy = timed_read(true, kBlocks, /*legacy=*/true);
  const ReadMeasure half_legacy =
      timed_read(true, kBlocks / 2, /*legacy=*/true);
  const auto ledger = [](const char* name, const ReadMeasure& m) {
    std::printf("    \"%s\": {\"bytes_copied\": %llu, \"gather_calls\":"
                " %llu, \"bytes_copied_per_byte_read\": %.3f},\n",
                name, static_cast<unsigned long long>(m.bytes_copied),
                static_cast<unsigned long long>(m.gather_calls),
                static_cast<double>(m.bytes_copied) / kPayload);
  };
  const bool le_one_payload =
      full.bytes_copied <= static_cast<std::uint64_t>(kPayload);
  std::printf("  \"copy_ledger\": {\n");
  std::printf("    \"payload_bytes\": %llu,\n",
              static_cast<unsigned long long>(kBlocks * kBlock));
  ledger("full_hit", full);
  ledger("half_hit", half);
  ledger("full_hit_legacy_copy_path", full_legacy);
  ledger("half_hit_legacy_copy_path", half_legacy);
  std::printf("    \"full_hit_copies_le_one_payload\": %s\n  },\n",
              le_one_payload ? "true" : "false");

  std::printf("  \"partial_hit_strictly_cheaper_for_k_ge_1\": %s\n}\n",
              strictly_cheaper ? "true" : "false");
  if (!imca::bench::write_bench_json(
          args.json_path,
          {bench_timer.finish("ablation/miss_penalty", g_events)})) {
    return 1;
  }
  return strictly_cheaper && warm_is_full_hit && le_one_payload ? 0 : 1;
}
