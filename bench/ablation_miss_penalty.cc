// The IMCa miss penalty, killed: with partial-hit assembly + client-side
// read-repair, a read that finds k of n covering blocks cached is strictly
// cheaper than the paper's forward-on-any-miss behaviour for every k >= 1,
// and a warm re-read after one miss is a full cache hit — without SMCache's
// server-side publish doing the warming.
//
// The paper observes the opposite (§4.4): because CMCache discards every hit
// when any covering block misses, a cold IMCa read costs *more* than plain
// GlusterFS (the wasted multi-get plus the full server read).
//
// Method: one client, a 2-MCD bank, one n-block file fully cached by the
// write path; then exactly n-k tail blocks are evicted straight out of the
// daemons (zero simulated time) and one whole-file read is timed under
//   baseline — cfg.partial_hit_reads = false (the paper's path)
//   partial  — cfg.partial_hit_reads = true  (this repo's path)
// The warm-re-read check runs with SMCache unwired (testbed smcache=false)
// so only client-side read-repair can repopulate the bank.
//
// Output is one JSON object; exit code 0 iff both acceptance claims hold,
// so the bench doubles as a regression test (ctest: miss_penalty_ablation).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "imca/keys.h"

namespace {

using namespace imca;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;

constexpr std::uint64_t kBlock = 2 * kKiB;
constexpr std::size_t kBlocks = 8;  // file spans 8 blocks = 16 KiB
constexpr const char* kPath = "/abl/file";

GlusterTestbedConfig base_config() {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = 2;
  cfg.imca.block_size = kBlock;
  return cfg;
}

// Drop `path`'s blocks [first, kBlocks) from every daemon, directly (no
// simulated time passes — this models eviction, not traffic).
void evict_tail(GlusterTestbed& tb, std::size_t first) {
  for (std::size_t b = first; b < kBlocks; ++b) {
    const std::string key = core::data_key(kPath, b * kBlock);
    for (std::size_t m = 0; m < tb.n_mcds(); ++m) {
      (void)tb.mcd(m).cache().del(key);
    }
  }
}

// Seed the file (the write path publishes every block via SMCache), evict
// the tail so exactly k blocks stay cached, and time one whole-file read.
double timed_read_ns(bool partial_hit, std::size_t k) {
  auto cfg = base_config();
  cfg.imca.partial_hit_reads = partial_hit;
  GlusterTestbed tb(cfg);
  SimDuration lat = 0;
  tb.run([](GlusterTestbed& t, std::size_t cached,
            SimDuration& out) -> sim::Task<void> {
    auto f = co_await t.client(0).create(kPath);
    (void)co_await t.client(0).write(
        *f, 0, std::vector<std::byte>(kBlocks * kBlock));
    evict_tail(t, cached);
    const SimTime t0 = t.loop().now();
    (void)co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    out = t.loop().now() - t0;
  }(tb, k, lat));
  return static_cast<double>(lat);
}

struct WarmResult {
  double cold_ns = 0;
  double warm_ns = 0;
  std::uint64_t blocks_repaired = 0;
  std::uint64_t warm_from_cache = 0;  // reads_from_cache delta on the re-read
};

// One evicted block, SMCache unwired: only client read-repair can rewarm the
// bank. The re-read must then be a full cache hit.
WarmResult warm_reread() {
  auto cfg = base_config();
  cfg.smcache = false;
  GlusterTestbed tb(cfg);
  WarmResult r;
  tb.run([](GlusterTestbed& t, WarmResult& out) -> sim::Task<void> {
    auto f = co_await t.client(0).create(kPath);
    (void)co_await t.client(0).write(
        *f, 0, std::vector<std::byte>(kBlocks * kBlock));
    // No SMCache: the bank is stone cold; the first read misses everywhere,
    // range-fetches once, and repairs all 8 blocks from the client.
    const SimTime t0 = t.loop().now();
    (void)co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    out.cold_ns = static_cast<double>(t.loop().now() - t0);
    // Let the fire-and-forget repair sets land before re-reading.
    co_await t.loop().sleep(1 * kMilli);
    out.blocks_repaired = t.cmcache(0).stats().blocks_repaired;
    const std::uint64_t from_cache_before =
        t.cmcache(0).stats().reads_from_cache;
    const SimTime t1 = t.loop().now();
    (void)co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    out.warm_ns = static_cast<double>(t.loop().now() - t1);
    out.warm_from_cache =
        t.cmcache(0).stats().reads_from_cache - from_cache_before;
  }(tb, r));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  (void)imca::bench::parse_args(argc, argv);

  bool strictly_cheaper = true;
  std::printf("{\n  \"file_blocks\": %zu,\n  \"block_bytes\": %llu,\n",
              kBlocks, static_cast<unsigned long long>(kBlock));
  std::printf("  \"sweep\": [\n");
  for (std::size_t k = 0; k <= kBlocks; ++k) {
    const double base = timed_read_ns(false, k);
    const double part = timed_read_ns(true, k);
    // Strict win whenever there is a miss penalty to kill (1 <= k < n); at
    // k = n both paths are a full cache hit and must merely not regress.
    if (k >= 1 && k < kBlocks && !(part < base)) strictly_cheaper = false;
    if (k == kBlocks && part > base) strictly_cheaper = false;
    std::printf("    {\"cached_blocks\": %zu, \"baseline_us\": %.3f,"
                " \"partial_hit_us\": %.3f, \"reduction_pct\": %.1f}%s\n",
                k, base / 1e3, part / 1e3,
                base > 0 ? 100.0 * (base - part) / base : 0.0,
                k == kBlocks ? "" : ",");
  }
  std::printf("  ],\n");

  const WarmResult w = warm_reread();
  const bool warm_is_full_hit =
      w.warm_from_cache == 1 && w.blocks_repaired == kBlocks;
  std::printf("  \"warm_reread\": {\"smcache\": false, \"cold_us\": %.3f,"
              " \"warm_us\": %.3f, \"blocks_repaired\": %llu,"
              " \"full_cache_hit\": %s},\n",
              w.cold_ns / 1e3, w.warm_ns / 1e3,
              static_cast<unsigned long long>(w.blocks_repaired),
              warm_is_full_hit ? "true" : "false");
  std::printf("  \"partial_hit_strictly_cheaper_for_k_ge_1\": %s\n}\n",
              strictly_cheaper ? "true" : "false");
  return strictly_cheaper && warm_is_full_hit ? 0 : 1;
}
