// Figure 8 — Read latency vs client count, with 1 MCD and with 4 MCDs
// (paper §5.4, panels a-d: small and medium record sizes).
//
// The paper's observations: latency grows with the client count; with a
// single MCD the growth is steeper because the daemon saturates and — with
// the full 64 MB/client working set — starts taking capacity misses, which
// additional MCDs remove.
//
// MCD memory is scaled with file sizes as in fig07 (256 MB daemons vs
// 8 MB/client files, preserving the paper's working-set : cache ratio).
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "workload/latency_bench.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using workload::LatencyOptions;
using workload::LatencySeries;

struct Outcome {
  LatencySeries series;
  std::uint64_t evictions = 0;
  std::uint64_t misses = 0;
};

Outcome run(std::size_t n_clients, std::size_t n_mcds) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = n_clients;
  cfg.n_mcds = n_mcds;
  cfg.mcd_memory = 256 * kMiB;
  GlusterTestbed tb(cfg);
  LatencyOptions opt;
  opt.min_record = 1;
  opt.max_record = 64 * kKiB;
  opt.record_multiplier = 16;  // 1B, 16B, 256B, 4K, 64K
  opt.records_per_size = 128;
  Outcome out;
  out.series =
      workload::run_latency_benchmark(tb.loop(), clients_of(tb), opt);
  if (n_mcds > 0) {
    const auto totals = tb.mcd_totals();
    out.evictions = totals.evictions;
    out.misses = totals.get_misses;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("== Fig 8: read latency (us) vs clients, 1 MCD and 4 MCDs ==\n");
  cluster::print_calibration_banner(net::ipoib_rc());

  const std::size_t client_counts[] = {1, 4, 16, 32};
  const std::uint64_t small_record = 256;
  const std::uint64_t medium_record = 64 * kKiB;

  Table table({"clients", "256B/1MCD", "256B/4MCD", "64KB/1MCD", "64KB/4MCD",
               "evict(1MCD)", "evict(4MCD)"});
  double lat1_small_1c = 0, lat1_small_32c = 0;
  std::uint64_t evict1_32 = 0, evict4_32 = 0;
  for (const auto clients : client_counts) {
    const auto one = run(clients, 1);
    const auto four = run(clients, 4);
    table.add_row({Table::cell(static_cast<std::uint64_t>(clients)),
                   Table::cell(one.series.read_ns.at(small_record) / 1e3),
                   Table::cell(four.series.read_ns.at(small_record) / 1e3),
                   Table::cell(one.series.read_ns.at(medium_record) / 1e3),
                   Table::cell(four.series.read_ns.at(medium_record) / 1e3),
                   Table::cell(one.evictions),
                   Table::cell(four.evictions)});
    if (clients == 1) lat1_small_1c = one.series.read_ns.at(small_record);
    if (clients == 32) {
      lat1_small_32c = one.series.read_ns.at(small_record);
      evict1_32 = one.evictions;
      evict4_32 = four.evictions;
    }
  }
  print_table(table, args);

  std::printf("\n# paper: read latency at 32 clients is higher than at one"
              " and rises with record size; measured 256B/1MCD:"
              " 1 client=%.1fus, 32 clients=%.1fus (x%.1f)\n",
              lat1_small_1c / 1e3, lat1_small_32c / 1e3,
              lat1_small_32c / lat1_small_1c);
  std::printf("# paper: capacity misses grow with clients on 1 MCD and are"
              " reduced by more MCDs; measured evictions at 32 clients:"
              " 1MCD=%" PRIu64 " 4MCD=%" PRIu64 "\n",
              evict1_32, evict4_32);
  return 0;
}
