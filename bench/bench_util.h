// Shared helpers for the figure benches: client-list collection, strict flag
// parsing (--csv, --scale, --json, --seed, --legacy-queue), percentage
// formatting, and the self-timing perf-trajectory recorder that writes the
// versioned BENCH_*.json schema (EXPERIMENTS.md "Perf trajectory").
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "common/table.h"

namespace imca::bench {

template <typename Testbed>
std::vector<fsapi::FileSystemClient*> clients_of(Testbed& tb) {
  std::vector<fsapi::FileSystemClient*> out;
  for (std::size_t i = 0; i < tb.n_clients(); ++i) {
    out.push_back(&tb.client(i));
  }
  return out;
}

struct BenchArgs {
  bool csv = false;
  // Scales the workload volume (files, file sizes): 1 = the bench default
  // (itself scaled down from the paper; see EXPERIMENTS.md), larger values
  // approach the paper's raw volumes at the cost of runtime.
  double scale = 1.0;
  // --json=<path>: write this bench's perf records (BENCH_*.json schema)
  // to `path`. Empty = don't write (sim_core_bench overrides the default).
  std::string json_path;
  // --seed=<n>: deterministic seed for benches with randomized mixes.
  std::uint64_t seed = 1;
  // --reps=<n>: timing repetitions per config; self-timing benches report
  // the best rep (interleaved across variants, so machine-wide drift on a
  // busy host hits every variant roughly equally).
  int reps = 3;
  // --legacy-queue: run the EventLoop on the old std::priority_queue — the
  // perf baseline ablation (same style as --legacy-copy-path).
  bool legacy_queue = false;
  // --bricks: run the bench's brick-scaling sweep (distribute groups) in
  // addition to its headline figure. Only fig09 honours it today.
  bool bricks = false;
  // --writeback: run the durable write-back ablation (write-through vs
  // K-way dirty absorb into the MCD tier). Only fig09 honours it today.
  bool writeback = false;
};

[[noreturn]] inline void usage_and_exit(const char* argv0,
                                        const char* bad_flag) {
  if (bad_flag != nullptr) {
    std::fprintf(stderr, "%s: unknown flag '%s'\n", argv0, bad_flag);
  }
  std::fprintf(stderr,
               "usage: %s [--csv] [--scale=<x>] [--json=<path>] [--seed=<n>]"
               " [--reps=<n>] [--legacy-queue] [--bricks] [--writeback]\n"
               "  --csv           print tables as CSV\n"
               "  --scale=<x>     multiply workload volume (default 1.0)\n"
               "  --json=<path>   append perf records (BENCH_*.json schema)\n"
               "  --seed=<n>      seed for randomized mixes (default 1)\n"
               "  --reps=<n>      timing reps per config, best wins"
               " (default 3)\n"
               "  --legacy-queue  EventLoop on the legacy priority_queue\n"
               "  --bricks        also run the brick-scaling sweep\n"
               "  --writeback     also run the write-back ablation\n",
               argv0);
  std::exit(2);
}

// Strict: any unrecognized argument is a usage error (exit 2) — a typo like
// --sclae=4 must not silently run the bench at the wrong scale.
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
      if (args.scale <= 0) args.scale = 1.0;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      args.reps = std::atoi(argv[i] + 7);
      if (args.reps < 1) args.reps = 1;
    } else if (std::strcmp(argv[i], "--legacy-queue") == 0) {
      args.legacy_queue = true;
    } else if (std::strcmp(argv[i], "--bricks") == 0) {
      args.bricks = true;
    } else if (std::strcmp(argv[i], "--writeback") == 0) {
      args.writeback = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage_and_exit(argv[0], nullptr);
    } else {
      usage_and_exit(argv[0], argv[i]);
    }
  }
  return args;
}

inline void print_table(const Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv();
  } else {
    table.print();
  }
}

inline std::string pct_reduction(double baseline, double value) {
  if (baseline <= 0) return "n/a";
  return Table::cell(100.0 * (baseline - value) / baseline, 1) + "%";
}

// --- perf trajectory (BENCH_*.json) ---------------------------------------
//
// Every record carries the full versioned schema so any single line is
// self-describing: {schema, git_rev, bench, events, wall_ms,
// events_per_sec, peak_rss_kb}. Files hold one JSON object with a
// `results` array; tools/check_bench_schema.py validates them in CI's
// bench-trajectory job. Perf numbers are recorded, never gated — machines
// vary; the trajectory across PRs is the signal.

inline constexpr const char* kBenchSchema = "imca-bench/v1";

inline const char* git_rev() {
#ifdef IMCA_GIT_REV
  return IMCA_GIT_REV;
#else
  return "unknown";
#endif
}

struct BenchRecord {
  std::string bench;  // e.g. "sim_core/timer/n=100000/wheel"
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  std::int64_t peak_rss_kb = 0;
};

inline std::int64_t peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
}

// Wall-clock stopwatch; finish(events) closes a BenchRecord.
class BenchTimer {
 public:
  BenchTimer() : start_(std::chrono::steady_clock::now()) {}

  double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

  BenchRecord finish(std::string bench, std::uint64_t events) const {
    BenchRecord r;
    r.bench = std::move(bench);
    r.events = events;
    r.wall_ms = elapsed_ms();
    r.events_per_sec =
        r.wall_ms > 0 ? static_cast<double>(events) / (r.wall_ms / 1e3) : 0.0;
    r.peak_rss_kb = peak_rss_kb();
    return r;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Write `records` to `path` (overwrites: each bench owns its BENCH_*.json;
// the cross-PR trajectory lives in version control / CI artifacts, keyed by
// git_rev). Returns false on I/O failure.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"%s\",\n  \"git_rev\": \"%s\",\n"
               "  \"results\": [\n", kBenchSchema, git_rev());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"schema\": \"%s\", \"git_rev\": \"%s\","
                 " \"bench\": \"%s\", \"events\": %llu,"
                 " \"wall_ms\": %.3f, \"events_per_sec\": %.0f,"
                 " \"peak_rss_kb\": %lld}%s\n",
                 kBenchSchema, git_rev(), r.bench.c_str(),
                 static_cast<unsigned long long>(r.events), r.wall_ms,
                 r.events_per_sec, static_cast<long long>(r.peak_rss_kb),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# perf trajectory: %zu record%s -> %s (git_rev=%s)\n",
              records.size(), records.size() == 1 ? "" : "s", path.c_str(),
              git_rev());
  return true;
}

}  // namespace imca::bench
