// Shared helpers for the figure benches: client-list collection, simple flag
// parsing (--csv, --scale), and percentage formatting.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "common/table.h"

namespace imca::bench {

template <typename Testbed>
std::vector<fsapi::FileSystemClient*> clients_of(Testbed& tb) {
  std::vector<fsapi::FileSystemClient*> out;
  for (std::size_t i = 0; i < tb.n_clients(); ++i) {
    out.push_back(&tb.client(i));
  }
  return out;
}

struct BenchArgs {
  bool csv = false;
  // Scales the workload volume (files, file sizes): 1 = the bench default
  // (itself scaled down from the paper; see EXPERIMENTS.md), larger values
  // approach the paper's raw volumes at the cost of runtime.
  double scale = 1.0;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
      if (args.scale <= 0) args.scale = 1.0;
    }
  }
  return args;
}

inline void print_table(const Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv();
  } else {
    table.print();
  }
}

inline std::string pct_reduction(double baseline, double value) {
  if (baseline <= 0) return "n/a";
  return Table::cell(100.0 * (baseline - value) / baseline, 1) + "%";
}

}  // namespace imca::bench
