// Figure 10 — Read latency to a shared file (paper §5.6).
//
// The latency benchmark modified for read/write sharing: only the root node
// writes the file; after a barrier every node reads it, with barriers
// between record sizes. One MCD. Paper headlines: 45% reduction vs NoCache
// at 32 nodes, benefit grows with node count, and with a single MCD the
// latency still grows linearly in the node count (every client drains the
// same daemon in the same order).
#include <cstdio>

#include "bench_util.h"
#include "workload/latency_bench.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;
using workload::LatencyOptions;

constexpr std::uint64_t kRecord = 1 * kKiB;

LatencyOptions options() {
  LatencyOptions opt;
  opt.min_record = kRecord;
  opt.max_record = kRecord;
  opt.records_per_size = 256;
  opt.shared_file = true;
  opt.measure_writes = false;
  return opt;
}

double run_gluster(std::size_t n_clients, std::size_t n_mcds) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = n_clients;
  cfg.n_mcds = n_mcds;
  GlusterTestbed tb(cfg);
  return workload::run_latency_benchmark(tb.loop(), clients_of(tb), options())
      .read_ns.at(kRecord);
}

double run_lustre(std::size_t n_clients) {
  LustreTestbedConfig cfg;
  cfg.n_clients = n_clients;
  cfg.n_ds = 1;  // Lustre-1DS (Cold), as in the paper
  LustreTestbed tb(cfg);
  auto opt = options();
  opt.before_read_phase = [&tb](std::size_t) { tb.cold_all(); };
  return workload::run_latency_benchmark(tb.loop(), clients_of(tb), opt)
      .read_ns.at(kRecord);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("== Fig 10: read latency (us) to a shared file; root writes,"
              " all nodes read; 1 MCD; %llu-byte records ==\n",
              static_cast<unsigned long long>(kRecord));
  cluster::print_calibration_banner(net::ipoib_rc());

  const std::size_t node_counts[] = {2, 4, 8, 16, 32};
  Table table({"nodes", "NoCache", "IMCa(1MCD)", "Lustre-1DS(Cold)",
               "reduction"});
  double nocache32 = 0, imca32 = 0;
  for (const auto nodes : node_counts) {
    const double nocache = run_gluster(nodes, 0);
    const double imca = run_gluster(nodes, 1);
    const double lustre = run_lustre(nodes);
    table.add_row({Table::cell(static_cast<std::uint64_t>(nodes)),
                   Table::cell(nocache / 1e3), Table::cell(imca / 1e3),
                   Table::cell(lustre / 1e3),
                   pct_reduction(nocache, imca)});
    if (nodes == 32) {
      nocache32 = nocache;
      imca32 = imca;
    }
  }
  print_table(table, args);

  std::printf("\n# paper: 45%% reduction vs NoCache at 32 nodes, and the"
              " benefit grows with node count; measured at 32: %s\n",
              pct_reduction(nocache32, imca32).c_str());
  return 0;
}
