// Figure 7 — Read latency with 32 clients and varying MCD counts (§5.4).
//
// 32 clients run the latency benchmark on separate files, with barriers
// between phases and record sizes. Series: NoCache, IMCa with 1/2/4 MCDs,
// Lustre-4DS cold and warm. Paper headlines: 82% reduction at a 1-byte read
// with 4 MCDs; Lustre cold wins below 32-byte records, IMCa-4MCD wins past
// that; IMCa-4MCD catches Lustre warm around 64 KB records; 1 MCD shows
// growing capacity misses at 32 clients.
//
// Scaling: MCD memory is scaled with the file sizes (the paper's 6 GB
// daemons against 64 MB/client files become 256 MB daemons against
// 8 MB/client files) so the 1-MCD capacity pressure is preserved.
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "workload/latency_bench.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;
using workload::LatencyOptions;
using workload::LatencySeries;

constexpr std::size_t kClients = 32;

LatencyOptions base_options() {
  LatencyOptions opt;
  opt.min_record = 1;
  opt.max_record = 64 * kKiB;
  opt.records_per_size = 128;  // 8 MB final file per client
  return opt;
}

struct GlusterOutcome {
  LatencySeries series;
  std::uint64_t mcd_evictions = 0;
  std::uint64_t mcd_misses = 0;
};

GlusterOutcome run_gluster(std::size_t n_mcds) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = kClients;
  cfg.n_mcds = n_mcds;
  cfg.mcd_memory = 256 * kMiB;  // scaled from 6 GB (see header comment)
  GlusterTestbed tb(cfg);
  GlusterOutcome out;
  out.series = workload::run_latency_benchmark(tb.loop(), clients_of(tb),
                                               base_options());
  if (n_mcds > 0) {
    const auto totals = tb.mcd_totals();
    out.mcd_evictions = totals.evictions;
    out.mcd_misses = totals.get_misses;
  }
  return out;
}

LatencySeries run_lustre(bool cold) {
  LustreTestbedConfig cfg;
  // llite's max_cached_mb (32 MB per OSC in Lustre 1.6), scaled 1/8 with the
  // file sizes: the reason the paper's Warm curve loses to IMCa once the
  // per-size sweep outgrows the client cache.
  cfg.client.cache_bytes = 4 * kMiB;
  cfg.n_clients = kClients;
  cfg.n_ds = 4;
  LustreTestbed tb(cfg);
  auto opt = base_options();
  if (cold) {
    opt.before_read_phase = [&tb](std::size_t) { tb.cold_all(); };
  }
  return workload::run_latency_benchmark(tb.loop(), clients_of(tb), opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("== Fig 7: read latency (us), 32 clients, varying MCDs; "
              "Lustre uses 4 DSs ==\n");
  cluster::print_calibration_banner(net::ipoib_rc());

  const auto nocache = run_gluster(0);
  const auto mcd1 = run_gluster(1);
  const auto mcd2 = run_gluster(2);
  const auto mcd4 = run_gluster(4);
  const auto lustre_cold = run_lustre(true);
  const auto lustre_warm = run_lustre(false);

  Table table({"record", "NoCache", "IMCa(1MCD)", "IMCa(2MCD)", "IMCa(4MCD)",
               "Lustre(Cold)", "Lustre(Warm)"});
  for (const auto& [r, nc] : nocache.series.read_ns) {
    table.add_row({Table::cell(r),
                   Table::cell(nc / 1e3),
                   Table::cell(mcd1.series.read_ns.at(r) / 1e3),
                   Table::cell(mcd2.series.read_ns.at(r) / 1e3),
                   Table::cell(mcd4.series.read_ns.at(r) / 1e3),
                   Table::cell(lustre_cold.read_ns.at(r) / 1e3),
                   Table::cell(lustre_warm.read_ns.at(r) / 1e3)});
  }
  print_table(table, args);

  std::printf("\n# paper: 82%% reduction at 1-byte reads, 4 MCDs vs NoCache;"
              " measured: %s\n",
              pct_reduction(nocache.series.read_ns.at(1),
                            mcd4.series.read_ns.at(1))
                  .c_str());

  // Crossover vs Lustre cold (paper: IMCa-4MCD wins beyond 32-byte records).
  for (std::uint64_t r = 1; r <= 64 * kKiB; r *= 2) {
    if (mcd4.series.read_ns.at(r) < lustre_cold.read_ns.at(r)) {
      std::printf("# paper: IMCa(4MCD) under Lustre(Cold) beyond 32B;"
                  " measured crossover at %" PRIu64 "B\n", r);
      break;
    }
  }
  // Crossover vs Lustre warm (paper: IMCa-4MCD catches warm near 64KB).
  bool caught = false;
  for (std::uint64_t r = 1; r <= 64 * kKiB; r *= 2) {
    if (mcd4.series.read_ns.at(r) < lustre_warm.read_ns.at(r)) {
      std::printf("# paper: IMCa(4MCD) under Lustre(Warm) at 64KB;"
                  " measured crossover at %" PRIu64 "B\n", r);
      caught = true;
      break;
    }
  }
  if (!caught) {
    std::printf("# paper: IMCa(4MCD) under Lustre(Warm) at 64KB; measured:"
                " no crossover up to 64KB\n");
  }
  std::printf("# MCD capacity pressure at 32 clients (evictions/misses):"
              " 1MCD=%" PRIu64 "/%" PRIu64 " 2MCD=%" PRIu64 "/%" PRIu64
              " 4MCD=%" PRIu64 "/%" PRIu64 "\n",
              mcd1.mcd_evictions, mcd1.mcd_misses, mcd2.mcd_evictions,
              mcd2.mcd_misses, mcd4.mcd_evictions, mcd4.mcd_misses);
  return 0;
}
