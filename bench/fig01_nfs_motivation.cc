// Figure 1 — the motivation experiment (paper §3): multi-client IOzone read
// bandwidth over NFS with three transports (native IB RDMA, TCP over IPoIB,
// TCP over GigE) and two server memory sizes (4 GB and 8 GB).
//
// The figure's message: the transports separate (RDMA > IPoIB >> GigE) only
// while the aggregate file set fits the server's page cache; past that
// boundary every transport collapses to the disk array's rate — "the
// bandwidth available to the clients seems to be related to the amount of
// memory on the server".
//
// Scaling: 128 MB per client file against 512 MB / 1 GB server caches
// (1/8 of the paper's 1 GB files against 4 GB / 8 GB servers).
#include <cstdio>

#include "bench_util.h"
#include "workload/iozone.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::NfsTestbed;
using cluster::NfsTestbedConfig;
using workload::IozoneOptions;

constexpr std::uint64_t kFileBytes = 128 * kMiB;  // paper: 1 GB per client

double run(net::TransportParams transport, std::uint64_t server_cache,
           std::size_t clients) {
  NfsTestbedConfig cfg;
  cfg.n_clients = clients;
  cfg.transport = std::move(transport);
  cfg.server.page_cache_bytes = server_cache;
  NfsTestbed tb(cfg);
  IozoneOptions opt;
  opt.file_bytes = kFileBytes;
  opt.request_size = 256 * kKiB;
  return workload::run_iozone(tb.loop(), clients_of(tb), opt)
      .aggregate_read_mbps;
}

void panel(const char* title, std::uint64_t server_cache,
           const BenchArgs& args) {
  std::printf("\n-- %s (server cache %llu MB; files %llu MB/client) --\n",
              title, static_cast<unsigned long long>(server_cache / kMiB),
              static_cast<unsigned long long>(kFileBytes / kMiB));
  Table table({"clients", "RDMA", "IPoIB", "GigE"});
  for (const std::size_t clients : {1u, 2u, 4u, 8u, 12u}) {
    table.add_row({Table::cell(static_cast<std::uint64_t>(clients)),
                   Table::cell(run(net::ib_rdma(), server_cache, clients), 1),
                   Table::cell(run(net::ipoib_rc(), server_cache, clients), 1),
                   Table::cell(run(net::gige(), server_cache, clients), 1)});
  }
  print_table(table, args);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("== Fig 1: multi-client IOzone read bandwidth (MB/s) over NFS"
              " ==\n");
  cluster::print_calibration_banner(net::ipoib_rc());

  // Fig 1(a): 4 GB server -> scaled 512 MB. Fig 1(b): 8 GB -> 1 GB.
  panel("Fig 1(a)", 512 * kMiB, args);
  panel("Fig 1(b)", 1 * kGiB, args);

  std::printf("\n# paper: bandwidth falls off once the aggregate file set"
              " exceeds server memory, and the larger-memory server sustains"
              " transport-bound bandwidth to higher client counts;"
              " RDMA > IPoIB >> GigE before the cliff.\n");
  return 0;
}
