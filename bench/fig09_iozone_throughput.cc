// Figure 9 — IOzone read throughput with a varying number of MCDs (§5.5).
//
// Each IOzone thread (one per node) writes then re-reads its own file
// sequentially. For IMCa the libmemcache CRC32 placement is replaced by the
// static modulo (round-robin over the block index), so consecutive 2 KB
// blocks of a file spread across all daemons and the bank's NICs aggregate.
// Paper headlines at 8 threads: 868 MB/s with 4 MCDs — roughly 2x NoCache
// (417 MB/s) and Lustre-1DS cold (325 MB/s); more cache servers give more
// throughput.
//
// Scaling: 32 MB files instead of 1 GB, with the server page cache and MCD
// memory scaled by the same 1/32 (6 GB -> 192 MB server cache and MCDs),
// preserving the paper's working-set : memory ratios.
#include <cstdio>

#include "bench_util.h"
#include "common/buffer.h"
#include "workload/iozone.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;
using workload::IozoneOptions;

constexpr std::uint64_t kFileBytes = 32 * kMiB;   // paper: 1 GB
constexpr std::uint64_t kRequest = 256 * kKiB;    // IOzone transfer size
constexpr std::uint64_t kServerCache = 192 * kMiB;  // paper: ~6 GB of 8 GB
constexpr std::uint64_t kMcdMemory = 192 * kMiB;    // paper: 6 GB

IozoneOptions options() {
  IozoneOptions opt;
  opt.file_bytes = kFileBytes;
  opt.request_size = kRequest;
  return opt;
}

// Kernel events processed across every testbed in the run — the perf
// trajectory's events/sec denominator (--json, EXPERIMENTS.md).
std::uint64_t g_events = 0;

// Buffer-layer copy ledger for one run (delta across the whole iozone
// write+read pass), reported in the JSON footer for the headline config.
struct CopyLedger {
  std::uint64_t bytes_copied = 0;
  std::uint64_t gather_calls = 0;
  std::uint64_t bytes_read = 0;
};

double run_gluster(std::size_t threads, std::size_t n_mcds,
                   core::HashScheme hash, CopyLedger* ledger = nullptr,
                   std::size_t n_bricks = 1,
                   workload::IozoneResult* full = nullptr) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = threads;
  cfg.n_mcds = n_mcds;
  cfg.n_bricks = n_bricks;  // distribute groups (1 replica each)
  cfg.imca.hash = hash;
  cfg.imca.block_size = 2 * kKiB;  // the paper's 2 KB IMCa block
  cfg.mcd_memory = kMcdMemory;
  cfg.server.page_cache_bytes = kServerCache;
  GlusterTestbed tb(cfg);
  const auto before = buffer_stats();
  const auto res = workload::run_iozone(tb.loop(), clients_of(tb), options());
  if (ledger) {
    ledger->bytes_copied = buffer_stats().bytes_copied - before.bytes_copied;
    ledger->gather_calls = buffer_stats().gather_calls - before.gather_calls;
    ledger->bytes_read = threads * kFileBytes;  // the re-read phase volume
  }
  g_events += tb.loop().events_processed();
  if (full) *full = res;
  return res.aggregate_read_mbps;
}

// --bricks: the brick-scaling sweep. 8 threads over G in {1, 2, 4}
// distribute groups; the 256 MB working set overflows one brick's 192 MB
// page cache but fits once the namespace spreads, so NoCache throughput
// (which the ring actually serves) must scale monotonically. Throughputs
// are ratios of simulated time and thus deterministic — the monotonicity
// check is a real gate, not a flaky perf assertion. Returns false (exit 1)
// if scaling regressed.
bool run_brick_sweep(const imca::bench::BenchArgs& args,
                     std::vector<BenchRecord>* records) {
  constexpr std::size_t kThreads = 8;
  const std::size_t groups[] = {1, 2, 4};
  std::printf("\n== Fig 9 brick sweep: %zu threads, G distribute groups ==\n",
              kThreads);
  Table table({"groups", "NoCache-write", "NoCache-read", "IMCa(4MCD)-read"});
  double nocache_read[3] = {0, 0, 0};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t g = groups[i];
    const BenchTimer timer;
    const std::uint64_t events0 = g_events;
    workload::IozoneResult nocache;
    run_gluster(kThreads, 0, core::HashScheme::kModulo, nullptr, g, &nocache);
    const double imca_read =
        run_gluster(kThreads, 4, core::HashScheme::kModulo, nullptr, g);
    nocache_read[i] = nocache.aggregate_read_mbps;
    table.add_row({Table::cell(static_cast<std::uint64_t>(g)),
                   Table::cell(nocache.aggregate_write_mbps, 1),
                   Table::cell(nocache.aggregate_read_mbps, 1),
                   Table::cell(imca_read, 1)});
    records->push_back(timer.finish(
        "fig09/bricks/g=" + std::to_string(g), g_events - events0));
  }
  print_table(table, args);
  // Monotone 1 -> 4: each doubling may not lose throughput (2% tolerance
  // for ring-placement skew), and 4 groups must strictly beat 1.
  bool ok = nocache_read[2] > nocache_read[0];
  for (int i = 1; i < 3; ++i) {
    if (nocache_read[i] < nocache_read[i - 1] * 0.98) ok = false;
  }
  std::printf("# brick scaling (NoCache read): 1g=%.0f 2g=%.0f 4g=%.0f"
              " MB/s -> %s\n",
              nocache_read[0], nocache_read[1], nocache_read[2],
              ok ? "monotone" : "REGRESSED");
  return ok;
}

// --writeback: the durable write-back ablation (DESIGN.md §5j). Same
// 8-thread / 4-MCD deployment as the headline row; writes either go through
// to the brick (baseline) or are absorbed as K=2 dirty replicas in the MCD
// bank and flushed to the brick in the background. Absorbing costs the wire
// the payload twice, so this is not a throughput win on a fast brick — the
// rows exist to version the trade-off. The GATE is the durability ledger,
// which is deterministic: every acked byte drains (iozone's close barriers
// force it), nothing is lost, degraded, or double-applied.
bool run_writeback_ablation(const imca::bench::BenchArgs& args,
                            std::vector<BenchRecord>* records) {
  constexpr std::size_t kThreads = 8;
  std::printf("\n== Fig 9 write-back ablation: %zu threads, 4 MCDs,"
              " K=2 dirty replicas ==\n",
              kThreads);
  Table table({"mode", "write-MBps", "read-MBps", "absorbed", "flushed",
               "lost", "degraded"});
  bool ok = true;
  for (int wb = 0; wb < 2; ++wb) {
    const BenchTimer timer;
    const std::uint64_t events0 = g_events;
    GlusterTestbedConfig cfg;
    cfg.n_clients = kThreads;
    cfg.n_mcds = 4;
    cfg.imca.hash = core::HashScheme::kModulo;
    cfg.imca.block_size = 2 * kKiB;
    cfg.mcd_memory = kMcdMemory;
    cfg.server.page_cache_bytes = kServerCache;
    if (wb != 0) {
      cfg.imca.writeback = true;
      cfg.imca.wb_replicas = 2;
      cfg.imca.wb_quorum = 2;
      cfg.imca.mcd_op_timeout = 2 * kMilli;
    }
    GlusterTestbed tb(cfg);
    const auto res =
        workload::run_iozone(tb.loop(), clients_of(tb), options());
    g_events += tb.loop().events_processed();
    const auto wbs = tb.writeback_totals();
    table.add_row({std::string(wb != 0 ? "write-back" : "write-through"),
                   Table::cell(res.aggregate_write_mbps, 1),
                   Table::cell(res.aggregate_read_mbps, 1),
                   Table::cell(wbs.absorbed), Table::cell(wbs.flushed_extents),
                   Table::cell(wbs.lost_extents),
                   Table::cell(wbs.degraded_writes)});
    if (wb != 0) {
      if (wbs.absorbed == 0) ok = false;  // the ablation never engaged
      // degraded_writes stays in the table but not the gate: under memory
      // pressure the bank refuses dirty stores (dirty items are pinned, so
      // an overfull daemon cannot evict its way clear) and the write rides
      // the designed ladder down to write-through. Loss is the violation.
      if (wbs.lost_extents != 0) ok = false;
      for (std::size_t i = 0; i < tb.n_clients(); ++i) {
        if (tb.cmcache(i).writeback()->dirty_bytes() != 0) ok = false;
      }
    }
    if (tb.server_totals().duplicate_applies != 0) ok = false;
    records->push_back(timer.finish(
        std::string("fig09/writeback/") + (wb != 0 ? "wb" : "wt"),
        g_events - events0));
  }
  print_table(table, args);
  std::printf("# write-back ledger: %s\n",
              ok ? "drained, zero loss, exactly-once"
                 : "VIOLATED (loss, leftover dirty bytes, or dup applies)");
  return ok;
}

double run_lustre(std::size_t threads) {
  LustreTestbedConfig cfg;
  cfg.n_clients = threads;
  cfg.n_ds = 1;  // the paper compares against Lustre-1DS (Cold)
  cfg.ds.page_cache_bytes = kServerCache;
  LustreTestbed tb(cfg);
  auto opt = options();
  // Cold client caches for the read phase (unmount/remount, paper §5.3).
  opt.before_read_phase = [&tb](std::size_t) { tb.cold_all(); };
  const auto r = workload::run_iozone(tb.loop(), clients_of(tb), opt);
  g_events += tb.loop().events_processed();
  return r.aggregate_read_mbps;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  const BenchTimer bench_timer;
  std::printf("== Fig 9: IOzone read throughput (MB/s); %llu MB files, "
              "modulo hash, 2K IMCa blocks (paper: 1 GB files) ==\n",
              static_cast<unsigned long long>(kFileBytes / kMiB));
  cluster::print_calibration_banner(net::ipoib_rc());

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  Table table({"threads", "NoCache", "IMCa(1MCD)", "IMCa(2MCD)", "IMCa(4MCD)",
               "Lustre-1DS(Cold)"});
  double nocache8 = 0, mcd4_8 = 0, lustre8 = 0;
  CopyLedger ledger8x4;
  for (const auto threads : thread_counts) {
    const double nocache =
        run_gluster(threads, 0, core::HashScheme::kModulo);
    const double m1 = run_gluster(threads, 1, core::HashScheme::kModulo);
    const double m2 = run_gluster(threads, 2, core::HashScheme::kModulo);
    const double m4 = run_gluster(threads, 4, core::HashScheme::kModulo,
                                  threads == 8 ? &ledger8x4 : nullptr);
    const double lustre = run_lustre(threads);
    table.add_row({Table::cell(static_cast<std::uint64_t>(threads)),
                   Table::cell(nocache, 1), Table::cell(m1, 1),
                   Table::cell(m2, 1), Table::cell(m4, 1),
                   Table::cell(lustre, 1)});
    if (threads == 8) {
      nocache8 = nocache;
      mcd4_8 = m4;
      lustre8 = lustre;
    }
  }
  print_table(table, args);

  std::printf("\n# paper at 8 threads: 4MCD=868 MB/s ~ 2.1x NoCache (417)"
              " and 2.7x Lustre-1DS cold (325)\n");
  std::printf("# measured at 8 threads: 4MCD=%.0f MB/s = %.1fx NoCache (%.0f)"
              " and %.1fx Lustre (%.0f)\n",
              mcd4_8, mcd4_8 / nocache8, nocache8, mcd4_8 / lustre8, lustre8);

  // Ablation (DESIGN.md §5): the paper swapped CRC32 for modulo here; show
  // what CRC32 placement would have delivered at 8 threads / 4 MCDs.
  const double crc = run_gluster(8, 4, core::HashScheme::kCrc32);
  const double consistent = run_gluster(8, 4, core::HashScheme::kConsistent);
  std::printf("# hash ablation at 8 threads / 4 MCDs: modulo=%.0f MB/s"
              " crc32=%.0f MB/s consistent=%.0f MB/s\n",
              mcd4_8, crc, consistent);

  // Copy ledger for the headline run (8 threads, 4 MCDs): how many times
  // the buffer layer moved each byte the clients read back. One JSON line
  // so dashboards can scrape it alongside the throughput table.
  std::printf("{\"copy_ledger\": {\"config\": \"8threads_4mcds\","
              " \"bytes_read\": %llu, \"bytes_copied\": %llu,"
              " \"gather_calls\": %llu,"
              " \"bytes_copied_per_byte_read\": %.3f}}\n",
              static_cast<unsigned long long>(ledger8x4.bytes_read),
              static_cast<unsigned long long>(ledger8x4.bytes_copied),
              static_cast<unsigned long long>(ledger8x4.gather_calls),
              ledger8x4.bytes_read
                  ? static_cast<double>(ledger8x4.bytes_copied) /
                        static_cast<double>(ledger8x4.bytes_read)
                  : 0.0);
  std::vector<BenchRecord> records;
  bool bricks_ok = true;
  if (args.bricks) {
    bricks_ok = run_brick_sweep(args, &records);
  }
  bool writeback_ok = true;
  if (args.writeback) {
    writeback_ok = run_writeback_ablation(args, &records);
  }
  records.push_back(bench_timer.finish("fig09/iozone_throughput", g_events));
  if (!write_bench_json(args.json_path, records)) {
    return 1;
  }
  return (bricks_ok && writeback_ok) ? 0 : 1;
}
