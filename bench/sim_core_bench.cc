// Simulation-kernel perf trajectory (DESIGN.md §5h, ROADMAP "make the
// simulator itself production-fast").
//
// Drives N ∈ {1k, 10k, 100k} simulated clients through two mixes that
// bracket the kernel's real workloads:
//
//   * timer — every client loops over sleeps whose durations spread across
//     all four wheel levels (ns..ms) with a rare far-future sleep that
//     lands in the overflow list; this is the fig05/fig09 shape where the
//     queue holds ~N concurrent timers at all times.
//   * rpc   — client/server coroutine pairs ping-pong over Channels with a
//     short service sleep; schedule_now-dominated, the RPC/fault-matrix
//     shape.
//
// Each config runs on the hierarchical timer wheel and on the legacy
// std::priority_queue (`--legacy-queue` restricts to the baseline only),
// self-checks that both implementations process the identical event count
// and final clock (the determinism contract), prints the wheel-vs-legacy
// speedup at each N, and writes every record to BENCH_sim_core.json in the
// versioned imca-bench/v1 schema. CI's bench-trajectory job archives the
// JSON per commit; numbers are recorded, not gated.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace {

using namespace imca;
using namespace imca::bench;
using sim::Channel;
using sim::EventLoop;
using sim::QueueImpl;
using sim::Task;

// Deterministic per-client stream (xorshift64*); seeded from --seed and the
// client id so every run of a config is bit-for-bit identical.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 0x9E3779B97F4A7C15ull + 1) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
};

struct MixResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  SimTime final_now = 0;
  sim::EventLoopStats stats;
};

// Sleep durations matching the simulator's calibrated latency scales (ns
// device ticks through ~400 µs queueing tails, DESIGN.md §7) — mostly wheel
// levels 0-1 with a level-2 tail, plus one far sleep per 4096 draws that
// crosses the 2^32 ns wheel span into the overflow list.
SimDuration timer_duration(Rng& rng) {
  static constexpr SimDuration kScales[] = {1, 16, 256, 4096};
  const std::uint64_t r = rng.next();
  if ((r & 0xFFF) == 0) return 5 * kSecond;  // overflow-list excursion
  return kScales[r % 4] * (1 + ((r >> 8) % 97));
}

Task<void> timer_client(EventLoop& loop, std::uint64_t seed, std::size_t id,
                        std::size_t iters) {
  Rng rng(seed ^ (0xD1B54A32D192ED03ull * (id + 1)));
  for (std::size_t i = 0; i < iters; ++i) {
    co_await loop.sleep(timer_duration(rng));
  }
}

Task<void> rpc_server(EventLoop& loop, Channel<int>& req, Channel<int>& resp,
                      std::size_t rpcs) {
  for (std::size_t i = 0; i < rpcs; ++i) {
    const int v = co_await req.recv();
    co_await loop.sleep(70);  // calibrated-ish MCD service time, ns-scale
    resp.send(v + 1);
  }
}

Task<void> rpc_client(EventLoop& loop, Channel<int>& req, Channel<int>& resp,
                      std::uint64_t seed, std::size_t id, std::size_t rpcs) {
  Rng rng(seed ^ (0xABCDEF1234567891ull * (id + 1)));
  for (std::size_t i = 0; i < rpcs; ++i) {
    req.send(static_cast<int>(i));
    (void)co_await resp.recv();
    co_await loop.sleep(1 + rng.next() % 512);  // client think time
  }
}

struct RpcPair {
  Channel<int> req;
  Channel<int> resp;
  RpcPair(EventLoop& loop) : req(loop), resp(loop) {}
};

MixResult run_timer_mix(std::size_t n_clients, std::uint64_t seed,
                        QueueImpl impl, std::uint64_t target_events) {
  EventLoop loop(impl);
  const std::size_t iters =
      static_cast<std::size_t>(target_events / n_clients);
  for (std::size_t id = 0; id < n_clients; ++id) {
    loop.spawn(timer_client(loop, seed, id, iters));
  }
  const BenchTimer timer;
  const std::uint64_t events = loop.run();
  MixResult r;
  r.events = events;
  r.wall_ms = timer.elapsed_ms();
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(events) / (r.wall_ms / 1e3) : 0;
  r.final_now = loop.now();
  r.stats = loop.stats();
  return r;
}

MixResult run_rpc_mix(std::size_t n_clients, std::uint64_t seed,
                      QueueImpl impl, std::uint64_t target_events) {
  EventLoop loop(impl);
  const std::size_t n_pairs = n_clients / 2;
  // ~6 kernel events per RPC round trip (send wakeup, service sleep, reply
  // wakeup, think sleep, plus spawn/finish amortization).
  const std::size_t rpcs = static_cast<std::size_t>(
      target_events / (6 * n_pairs));
  std::vector<std::unique_ptr<RpcPair>> pairs;
  pairs.reserve(n_pairs);
  for (std::size_t id = 0; id < n_pairs; ++id) {
    pairs.push_back(std::make_unique<RpcPair>(loop));
    RpcPair& p = *pairs.back();
    loop.spawn(rpc_server(loop, p.req, p.resp, rpcs));
    loop.spawn(rpc_client(loop, p.req, p.resp, seed, id, rpcs));
  }
  const BenchTimer timer;
  const std::uint64_t events = loop.run();
  MixResult r;
  r.events = events;
  r.wall_ms = timer.elapsed_ms();
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(events) / (r.wall_ms / 1e3) : 0;
  r.final_now = loop.now();
  r.stats = loop.stats();
  return r;
}

MixResult run_mix(const char* mix, std::size_t n, std::uint64_t seed,
                  QueueImpl impl, std::uint64_t target_events) {
  return std::string(mix) == "timer"
             ? run_timer_mix(n, seed, impl, target_events)
             : run_rpc_mix(n, seed, impl, target_events);
}

const char* impl_name(QueueImpl impl) {
  return impl == QueueImpl::kTimerWheel ? "wheel" : "legacy";
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (args.json_path.empty()) args.json_path = "BENCH_sim_core.json";

  const std::size_t client_counts[] = {1000, 10000, 100000};
  const char* mixes[] = {"timer", "rpc"};
  // ~4M kernel events per config at scale 1 — long enough that per-event
  // cost dominates setup, short enough for CI.
  const auto target_events =
      static_cast<std::uint64_t>(4e6 * args.scale);

  std::printf("== sim_core_bench: DES kernel events/sec, %s default queue"
              " (seed=%" PRIu64 ", target %" PRIu64 " events/config) ==\n",
              args.legacy_queue ? "legacy priority_queue" : "timer wheel",
              args.seed, target_events);

  Table table({"mix", "clients", "impl", "events", "wall_ms", "Mev/s",
               "cascades", "arena_KiB", "reuse%"});
  std::vector<BenchRecord> records;
  bool self_check_failed = false;

  for (const char* mix : mixes) {
    for (const std::size_t n : client_counts) {
      // Best-of-reps, with the two implementations interleaved inside each
      // rep: on a shared/noisy host, machine-wide drift (frequency steps,
      // neighbor load) then hits wheel and legacy about equally, so the
      // reported speedup is stable even when absolute rates wander.
      MixResult wheel{}, legacy{};
      for (int rep = 0; rep < args.reps; ++rep) {
        MixResult w{}, l{};
        if (!args.legacy_queue) {
          // ...and always the legacy baseline too, so one invocation prints
          // the before/after trajectory and cross-checks determinism.
          w = run_mix(mix, n, args.seed, QueueImpl::kTimerWheel,
                      target_events);
        }
        l = run_mix(mix, n, args.seed, QueueImpl::kLegacyHeap, target_events);
        if (!args.legacy_queue &&
            (w.events != l.events || w.final_now != l.final_now)) {
          std::fprintf(stderr,
                       "SELF-CHECK FAILED %s/n=%zu: wheel {events=%" PRIu64
                       " now=%" PRIu64 "} vs legacy {events=%" PRIu64
                       " now=%" PRIu64 "}\n",
                       mix, n, w.events, w.final_now, l.events, l.final_now);
          self_check_failed = true;
        }
        if (rep == 0 || w.events_per_sec > wheel.events_per_sec) wheel = w;
        if (rep == 0 || l.events_per_sec > legacy.events_per_sec) legacy = l;
      }

      for (const QueueImpl impl :
           {QueueImpl::kTimerWheel, QueueImpl::kLegacyHeap}) {
        if (args.legacy_queue && impl == QueueImpl::kTimerWheel) continue;
        const MixResult& r =
            impl == QueueImpl::kTimerWheel ? wheel : legacy;
        table.add_row(
            {mix, Table::cell(static_cast<std::uint64_t>(n)),
             impl_name(impl), Table::cell(r.events),
             Table::cell(r.wall_ms, 1), Table::cell(r.events_per_sec / 1e6, 2),
             Table::cell(r.stats.cascades),
             Table::cell(r.stats.arena_bytes / 1024),
             Table::cell(r.stats.events_scheduled
                             ? 100.0 * static_cast<double>(r.stats.arena_reuse) /
                                   static_cast<double>(r.stats.events_scheduled)
                             : 0.0,
                         1)});
        BenchRecord rec;
        rec.bench = std::string("sim_core/") + mix + "/n=" +
                    std::to_string(n) + "/" + impl_name(impl);
        rec.events = r.events;
        rec.wall_ms = r.wall_ms;
        rec.events_per_sec = r.events_per_sec;
        rec.peak_rss_kb = peak_rss_kb();
        records.push_back(std::move(rec));
      }

      if (!args.legacy_queue && legacy.events_per_sec > 0) {
        std::printf("# %s n=%zu: wheel %.2f Mev/s vs legacy %.2f Mev/s ->"
                    " %.2fx\n",
                    mix, n, wheel.events_per_sec / 1e6,
                    legacy.events_per_sec / 1e6,
                    wheel.events_per_sec / legacy.events_per_sec);
      }
    }
  }
  print_table(table, args);

  if (!write_bench_json(args.json_path, records)) return 1;
  if (self_check_failed) return 1;
  return 0;
}
