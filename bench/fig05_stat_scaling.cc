// Figure 5 — Stat latency with multiple clients (paper §5.2).
//
// Workload: one client creates the file set (untimed); then every client
// stats every file, and the slowest node's completion time is reported.
// Series: GlusterFS with no cache, GlusterFS + IMCa with 1/2/4/6 MCDs, and
// Lustre with 4 data servers. The paper's headline numbers at 64 clients:
// 82% reduction with 1 MCD vs NoCache, 86% lower than Lustre with 6 MCDs,
// diminishing returns past 2 MCDs (MCD miss rate reaches zero).
//
// Scaling: 8192 files instead of 262144 (the per-op shape is unchanged; the
// event count is not). --scale=N multiplies the file count.
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "workload/stat_bench.h"

namespace {

using namespace imca;
using namespace imca::bench;
using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;

// Kernel events processed across every testbed in the run — the perf
// trajectory's events/sec denominator (--json, EXPERIMENTS.md).
std::uint64_t g_events = 0;

double run_gluster(std::size_t n_clients, std::size_t n_mcds,
                   std::size_t n_files, std::uint64_t& misses) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = n_clients;
  cfg.n_mcds = n_mcds;
  GlusterTestbed tb(cfg);
  workload::StatOptions opt;
  opt.n_files = n_files;
  const auto r = workload::run_stat_benchmark(tb.loop(), clients_of(tb), opt);
  misses = n_mcds > 0 ? tb.mcd_totals().get_misses : 0;
  g_events += tb.loop().events_processed();
  return r.max_node_seconds;
}

double run_lustre(std::size_t n_clients, std::size_t n_ds,
                  std::size_t n_files) {
  LustreTestbedConfig cfg;
  cfg.n_clients = n_clients;
  cfg.n_ds = n_ds;
  LustreTestbed tb(cfg);
  workload::StatOptions opt;
  opt.n_files = n_files;
  const double s = workload::run_stat_benchmark(tb.loop(), clients_of(tb),
                                                opt).max_node_seconds;
  g_events += tb.loop().events_processed();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  const BenchTimer bench_timer;
  const auto n_files =
      static_cast<std::size_t>(8192 * args.scale);

  std::printf("== Fig 5: stat time (s) vs clients; %zu files "
              "(paper: 262144 files, 64 nodes) ==\n", n_files);
  cluster::print_calibration_banner(net::ipoib_rc());

  const std::size_t client_counts[] = {1, 4, 16, 64};
  const std::size_t mcd_counts[] = {1, 2, 4, 6};

  Table table({"clients", "NoCache", "MCD(1)", "MCD(2)", "MCD(4)", "MCD(6)",
               "Lustre-4DS"});
  double nocache64 = 0, mcd1_64 = 0, mcd4_64 = 0, mcd6_64 = 0, lustre64 = 0;
  std::uint64_t misses_by_mcds[5] = {};

  for (const auto clients : client_counts) {
    std::vector<std::string> row;
    row.push_back(Table::cell(static_cast<std::uint64_t>(clients)));
    std::uint64_t misses = 0;
    const double nocache = run_gluster(clients, 0, n_files, misses);
    row.push_back(Table::cell(nocache, 3));
    double mcd_t[4] = {};
    for (std::size_t m = 0; m < 4; ++m) {
      mcd_t[m] = run_gluster(clients, mcd_counts[m], n_files, misses);
      row.push_back(Table::cell(mcd_t[m], 3));
      if (clients == 64) misses_by_mcds[m + 1] = misses;
    }
    const double lustre = run_lustre(clients, 4, n_files);
    row.push_back(Table::cell(lustre, 3));
    table.add_row(std::move(row));
    if (clients == 64) {
      nocache64 = nocache;
      mcd1_64 = mcd_t[0];
      mcd4_64 = mcd_t[2];
      mcd6_64 = mcd_t[3];
      lustre64 = lustre;
    }
  }
  print_table(table, args);

  std::printf("\n# paper: 82%% reduction, 1 MCD vs NoCache at 64 clients;"
              " measured: %s\n",
              pct_reduction(nocache64, mcd1_64).c_str());
  std::printf("# paper: 86%% below Lustre-4DS with 6 MCDs at 64 clients;"
              " measured: %s\n",
              pct_reduction(lustre64, mcd6_64).c_str());
  std::printf("# paper: diminishing returns beyond 2 MCDs (23%% from 4->6);"
              " measured 4->6: %s\n",
              pct_reduction(mcd4_64, mcd6_64).c_str());
  std::printf("# MCD get_misses at 64 clients by bank width:");
  for (std::size_t m = 0; m < 4; ++m) {
    std::printf(" %zuMCD=%" PRIu64, mcd_counts[m], misses_by_mcds[m + 1]);
  }
  std::printf("\n");
  if (!write_bench_json(args.json_path,
                        {bench_timer.finish("fig05/stat_scaling",
                                            g_events)})) {
    return 1;
  }
  return 0;
}
